// Package core implements the paper's primary contribution: the Incognito
// algorithm (Fig. 8) and its Super-roots and Cube variants (§3.3), which
// compute the set of ALL k-anonymous full-domain generalizations of a table
// with respect to a quasi-identifier, optionally with a tuple-suppression
// threshold (§2.1).
package core

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync/atomic"

	"incognito/internal/faultinject"
	"incognito/internal/hierarchy"
	"incognito/internal/relation"
	"incognito/internal/resilience"
	"incognito/internal/telemetry"
	"incognito/internal/trace"
)

// QIAttr binds one quasi-identifier attribute: a column of the table and the
// generalization hierarchy over that column's base domain.
type QIAttr struct {
	Col int
	H   *hierarchy.Hierarchy
}

// Input is a k-anonymization problem instance: the table, the ordered
// quasi-identifier, the anonymity parameter k, and the maximum number of
// outlier tuples that may be suppressed (0 disables suppression).
type Input struct {
	Table       *relation.Table
	QI          []QIAttr
	K           int64
	MaxSuppress int64
	// Parallelism bounds intra-run concurrency: 0 uses every core
	// (GOMAXPROCS), 1 runs strictly sequentially (the reference path), and
	// n > 1 uses at most n workers. Solutions and Stats are identical at
	// every setting; see parallel.go.
	Parallelism int
	// Ctx, when non-nil, makes the run cancellable: it is checked at phase
	// boundaries (search iterations, BFS queue pops, cube waves, lattice
	// strata, binary-search probes) and inside the worker loops of the
	// parallel paths. Once it is done the algorithms return promptly with
	// an error wrapping the context's error. nil means context.Background.
	Ctx context.Context
	// Trace, when non-nil, records a span per pipeline phase with wall
	// times and work counters (see internal/trace). A nil tracer is fully
	// disabled and allocation-free; Solutions and Stats are bit-identical
	// with tracing on or off.
	Trace *trace.Tracer
	// Span optionally nests the run's spans under an existing parent span
	// of the same tracer (the bench harness groups each experiment cell
	// this way). When nil, runs start top-level spans on Trace.
	Span *trace.Span
	// Progress, when non-nil, receives live atomic work counters (nodes
	// visited, candidate totals, tuples scanned, rollups) from the hot
	// paths, for progress reporting and the /metrics endpoint. A nil
	// handle is fully disabled and allocation-free; Solutions and Stats
	// are bit-identical with progress on or off.
	Progress *telemetry.Progress
	// Metrics, when non-nil, receives distribution observations
	// (frequency-set sizes, rollup fan-in) as they happen. Same disabled
	// contract as Progress.
	Metrics *telemetry.RunMetrics
	// SparseKernel forces every frequency set onto the sparse map-backed
	// representation, disabling the dense mixed-radix kernel that is
	// otherwise chosen adaptively from the hierarchies' level sizes.
	// Solutions and Stats are bit-identical either way; the knob exists for
	// benchmarking the kernels against each other and as an escape hatch.
	SparseKernel bool
	// Check, when non-nil, snapshots the search frontier to disk at every
	// checkpoint boundary — after each subset-size iteration, after each
	// family completes on the parallel path, after each breadth-first level
	// on the sequential path — so a killed run can be resumed. Snapshots
	// hold marked lattice state and counters, never raw frequency sets;
	// those are recomputed by rollup on resume.
	Check *resilience.Checkpointer
	// Resume, when non-nil, is a snapshot previously written by Check.
	// The run replays candidate generation up to the snapshot (node IDs are
	// deterministic, so the replay is exact), restores the partial iteration
	// state, and continues; Solutions and Stats are bit-identical to an
	// uninterrupted run. The snapshot's fingerprint must match this input.
	Resume *resilience.Snapshot
	// Budget, when non-nil, enforces a soft memory budget over the run's
	// long-lived frequency sets (cube and materialized views, failure
	// frontiers retained for rollup): over budget, new sets fall back to the
	// sparse kernel and materialization is shed; past the hard stop the run
	// aborts at the next boundary with resilience.ErrDegraded, returning
	// the solutions already proven.
	Budget *resilience.Accountant
	// ScanOverride, when non-nil, replaces every base-table frequency-set
	// scan: ScanFreq calls it instead of counting locally. This is the
	// multi-process partition hook — internal/partition installs a closure
	// that fans the scan out to worker processes, each counting its own row
	// range, and merges the partial sets additively (counts are additive,
	// so the result is bit-identical to a local scan). Rollups, the search,
	// and all Stats accounting stay on the coordinator. An error from the
	// override panics into the run's phase guards, surfacing as a
	// *resilience.PanicError like any other worker failure.
	ScanOverride func(dims, levels []int) (*relation.FreqSet, error)
	// Capture, when non-nil, collects a NodeRecord for every node whose
	// frequency set is checked, plus the delta screen's updated records —
	// the per-node half of a persistable RunState (see delta.go). Purely
	// observational: Solutions and Stats are bit-identical with capture on
	// or off.
	Capture *StateCapture
	// Delta, when non-nil, turns the run into an incremental
	// re-anonymization: checks are answered from the prior RunState's
	// records where the delta provably cannot flip them, and revalidated
	// otherwise. Only the Basic variant supports delta runs; ScanOverride
	// and Budget must be nil (Run validates this). Solutions and Stats are
	// bit-identical to a cold run over the same (edited) table.
	Delta *DeltaRun

	// abort is set by the first worker panic of a parallel phase so sibling
	// workers drain promptly through the same Err checks cancellation uses.
	// The run entry points install it on their private Input copy.
	abort *atomic.Bool
}

// StartSpan opens a phase span for this run: a child of Input.Span when one
// is set, a top-level span of Input.Trace otherwise. Nil-safe throughout —
// with tracing disabled it returns a nil span whose methods no-op.
func (in *Input) StartSpan(name string) *trace.Span {
	if in.Span != nil {
		return in.Span.Start(name)
	}
	return in.Trace.Start(name)
}

// Err reports the run's cancellation state: nil while the context (if any)
// is live, the context's error once it is done. It is cheap enough to call
// on every queue pop.
func (in *Input) Err() error {
	if in.abort != nil && in.abort.Load() {
		return context.Canceled
	}
	if in.Ctx == nil {
		return nil
	}
	return in.Ctx.Err()
}

// installAbort equips the input with the worker-panic drain flag; entry
// points call it on their private copy before spawning any goroutine.
func (in *Input) installAbort() {
	if in.abort == nil {
		in.abort = new(atomic.Bool)
	}
}

// abortSiblings makes every subsequent Err call report cancellation, so the
// workers of a parallel phase drain after one of them panicked.
func (in *Input) abortSiblings() {
	if in.abort != nil {
		in.abort.Store(true)
	}
}

// cancelled wraps a context error so callers can test it with errors.Is
// against context.Canceled or context.DeadlineExceeded.
func cancelled(err error) error {
	return fmt.Errorf("core: anonymization cancelled: %w", err)
}

// NewInput assembles an Input from parallel column/hierarchy slices, the
// shape dataset providers hand out. It panics if the slices have different
// lengths (a programming error); semantic validation is Validate's job.
func NewInput(t *relation.Table, cols []int, hs []*hierarchy.Hierarchy, k, maxSuppress int64) Input {
	if len(cols) != len(hs) {
		panic(fmt.Sprintf("core: NewInput got %d columns but %d hierarchies", len(cols), len(hs)))
	}
	qi := make([]QIAttr, len(cols))
	for i := range cols {
		qi[i] = QIAttr{Col: cols[i], H: hs[i]}
	}
	return Input{Table: t, QI: qi, K: k, MaxSuppress: maxSuppress}
}

// Validate checks the instance is well formed: within-range columns,
// hierarchies bound to the right dictionaries, sensible k and threshold.
func (in *Input) Validate() error {
	if in.Table == nil {
		return fmt.Errorf("core: nil table")
	}
	if len(in.QI) == 0 {
		return fmt.Errorf("core: empty quasi-identifier")
	}
	if in.K < 1 {
		return fmt.Errorf("core: k must be at least 1, got %d", in.K)
	}
	if in.MaxSuppress < 0 {
		return fmt.Errorf("core: negative suppression threshold %d", in.MaxSuppress)
	}
	seen := make(map[int]bool)
	for i, q := range in.QI {
		if q.Col < 0 || q.Col >= in.Table.NumCols() {
			return fmt.Errorf("core: QI attribute %d references column %d of a %d-column table", i, q.Col, in.Table.NumCols())
		}
		if seen[q.Col] {
			return fmt.Errorf("core: column %d appears twice in the quasi-identifier", q.Col)
		}
		seen[q.Col] = true
		if q.H == nil {
			return fmt.Errorf("core: QI attribute %d has no hierarchy", i)
		}
		if q.H.Dict(0) != in.Table.Dict(q.Col) {
			return fmt.Errorf("core: hierarchy for QI attribute %d (%s) is not bound to the table column's dictionary", i, q.H.Attr())
		}
	}
	return nil
}

// Heights returns the hierarchy height of each QI attribute in order — the
// radix vector of the generalization lattice.
func (in *Input) Heights() []int {
	hs := make([]int, len(in.QI))
	for i, q := range in.QI {
		hs[i] = q.H.Height()
	}
	return hs
}

// cols maps QI positions (dims) to table column indexes.
func (in *Input) cols(dims []int) []int {
	out := make([]int, len(dims))
	for i, d := range dims {
		out[i] = in.QI[d].Col
	}
	return out
}

// recodeTables returns, for each dim, the base-code → level-code table at
// the given level (nil for level 0).
func (in *Input) recodeTables(dims, levels []int) [][]int32 {
	out := make([][]int32, len(dims))
	for i := range dims {
		out[i] = in.QI[dims[i]].H.MapTo(levels[i])
	}
	return out
}

// cardAt returns the per-column cardinality bounds of the frequency set at
// the given generalization — the hierarchies' level sizes, known without
// touching the data. This is the metadata the adaptive kernel picks its
// representation from; nil (forcing the sparse kernel) when SparseKernel
// is set or the memory budget is over its soft limit (the first rung of the
// degradation ladder).
func (in *Input) cardAt(dims, levels []int) []int {
	if in.SparseKernel || !in.Budget.DenseAllowed() {
		return nil
	}
	card := make([]int, len(dims))
	for i := range dims {
		card[i] = in.QI[dims[i]].H.LevelSize(levels[i])
	}
	return card
}

// ScanFreq computes the frequency set of the table with respect to the
// given generalization by a full scan — the paper's COUNT(*) group-by over
// the star schema. At Workers() > 1 the scan is chunked into row ranges
// counted concurrently on the work-stealing scheduler and merged; with a
// ScanOverride installed it is delegated to the partition workers. The
// result is identical in every case, and so is the Stats and Progress
// accounting (one table scan, every row counted once).
func (in *Input) ScanFreq(dims, levels []int) *relation.FreqSet {
	faultinject.Point("core.scan")
	var f *relation.FreqSet
	if in.ScanOverride != nil {
		// Partitioned scans get their own span so the coordinator trace
		// shows each round-trip to the worker pool; the workers' own view
		// of the same scans arrives later as adopted partition_worker
		// trees. Non-partitioned runs record no partition_scan spans.
		sp := in.StartSpan("partition_scan")
		sp.Add("partition_scans", 1)
		var err error
		f, err = in.ScanOverride(dims, levels)
		sp.End()
		if err != nil {
			panic(fmt.Errorf("core: partitioned scan failed: %w", err))
		}
	} else {
		f = relation.GroupCountParallelSched(in.Table, in.cols(dims), in.recodeTables(dims, levels), in.cardAt(dims, levels), in.Workers(), in.schedMetrics())
	}
	in.Progress.AddTableScans(1)
	in.Progress.AddTuplesScanned(int64(in.Table.NumRows()))
	in.Metrics.ObserveFreqSetSize(f.Len())
	return f
}

// ScanFreqRange computes the frequency set over the row range [lo, hi)
// only — one partition worker's share of a distributed ScanFreq. It does
// no Stats or Progress accounting (the coordinator's ScanFreq accounts
// for the whole logical scan) and runs sequentially: process-level
// parallelism is the partition mode's concurrency axis.
func (in *Input) ScanFreqRange(dims, levels []int, lo, hi int) *relation.FreqSet {
	return relation.GroupCountRange(in.Table, in.cols(dims), in.recodeTables(dims, levels), in.cardAt(dims, levels), lo, hi)
}

// composeSteps builds the γ⁺ table from hierarchy level `from` to level
// `to` of QI attribute dim (nil when from == to).
func (in *Input) composeSteps(dim, from, to int) []int32 {
	if from == to {
		return nil
	}
	h := in.QI[dim].H
	table := append([]int32(nil), h.Step(from)...)
	for l := from + 1; l < to; l++ {
		step := h.Step(l)
		for i, c := range table {
			table[i] = step[c]
		}
	}
	return table
}

// RollupTo produces the frequency set at target levels from a finer
// frequency set over the same dims (the rollup property, §3). fromLevels
// must be componentwise ≤ levels.
func (in *Input) RollupTo(f *relation.FreqSet, dims, fromLevels, levels []int) *relation.FreqSet {
	maps := make([][]int32, len(dims))
	changed := false
	for i := range dims {
		if fromLevels[i] > levels[i] {
			panic(fmt.Sprintf("core: RollupTo from %v to %v is not a generalization", fromLevels, levels))
		}
		maps[i] = in.composeSteps(dims[i], fromLevels[i], levels[i])
		if maps[i] != nil {
			changed = true
		}
	}
	if !changed {
		return f
	}
	faultinject.Point("core.rollup")
	out := f.RecodeWithCard(maps, in.cardAt(dims, levels))
	in.Progress.AddRollups(1)
	in.Metrics.ObserveFreqSetSize(out.Len())
	in.Metrics.ObserveRollup(f.Len(), out.Len())
	return out
}

// CheckFreq applies the instance's k-anonymity test (with suppression
// threshold) to a frequency set.
func (in *Input) CheckFreq(f *relation.FreqSet) bool {
	return f.IsKAnonymous(in.K, in.MaxSuppress)
}

// grantFreq charges a long-lived frequency set (retained past the current
// node: a failure-frontier set, a cube set, a materialized view) to the
// memory accountant. Transient scan and rollup results are not charged.
func (in *Input) grantFreq(f *relation.FreqSet) {
	if in.Budget != nil && f != nil {
		in.Budget.Grant(f.MemBytes())
	}
}

// releaseFreq returns a granted frequency set's bytes to the accountant.
func (in *Input) releaseFreq(f *relation.FreqSet) {
	if in.Budget != nil && f != nil {
		in.Budget.Release(f.MemBytes())
	}
}

// SnapshotMatches reports whether snap was written by a run over this exact
// problem instance under the named algorithm (a Variant or Algo String).
// Harnesses sweeping many configurations against one shared snapshot use it
// to resume only the cell the snapshot belongs to.
func (in *Input) SnapshotMatches(snap *resilience.Snapshot, algorithm string) bool {
	return snap != nil && snap.Fingerprint.Equal(in.Fingerprint(algorithm))
}

// Fingerprint pins a checkpoint to this exact problem instance: algorithm,
// lattice shape, parameters, and an FNV-1a hash of the table's QI columns,
// so a snapshot can never be resumed against different data. It is also
// the identity the service layer keys its result cache on (extended there
// with full-dataset and hierarchy-content hashes, which the checkpoint
// identity does not need: a snapshot already lives next to its run).
func (in *Input) Fingerprint(algorithm string) resilience.Fingerprint {
	h := fnv.New64a()
	rows := in.Table.NumRows()
	buf := make([]byte, 4*len(in.QI))
	for r := 0; r < rows; r++ {
		for i, q := range in.QI {
			put32(buf, i, in.Table.Code(r, q.Col))
		}
		h.Write(buf)
	}
	return resilience.Fingerprint{
		Algorithm:   algorithm,
		Heights:     in.Heights(),
		K:           in.K,
		MaxSuppress: in.MaxSuppress,
		Rows:        rows,
		TableHash:   h.Sum64(),
	}
}
