package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"incognito/internal/hierarchy"
	"incognito/internal/relation"
	"incognito/internal/resilience"
)

// deltaFixture is a random instance whose hierarchies exist as unbound
// specs, so the same generalization semantics can be bound against the
// original table, the edited table, or a full-domain scratch table — the
// string-keyed state must behave identically under every binding.
type deltaFixture struct {
	names   []string
	domains []int
	specs   []*hierarchy.Spec
	k       int64
	supp    int64
}

// newDeltaFixture builds random monotone merge-chain hierarchies, like
// randomHierarchy but keeping the specs unbound.
func newDeltaFixture(rng *rand.Rand, nAttrs int, k, supp int64) *deltaFixture {
	fx := &deltaFixture{k: k, supp: supp}
	for i := 0; i < nAttrs; i++ {
		fx.names = append(fx.names, string(rune('A'+i)))
		fx.domains = append(fx.domains, 2+rng.Intn(5))
	}
	for i, attr := range fx.names {
		domain := fx.domains[i]
		height := 1 + rng.Intn(3)
		cur := make([]int, domain)
		for j := range cur {
			cur[j] = j
		}
		levels := make([]hierarchy.Level, height)
		for l := 0; l < height; l++ {
			groups := 1
			if l < height-1 {
				groups = 1 + rng.Intn(maxInt(1, domain-l))
			}
			merge := make(map[int]int)
			next := make([]int, domain)
			for j := range cur {
				g, ok := merge[cur[j]]
				if !ok {
					g = rng.Intn(groups)
					merge[cur[j]] = g
				}
				next[j] = g
			}
			cur = append([]int(nil), next...)
			snapshot := append([]int(nil), next...)
			name := attr + string(rune('1'+l))
			levels[l] = hierarchy.Level{Name: name, FromBase: func(v string) (string, error) {
				return name + "-g" + string(rune('a'+snapshot[int(v[0]-'a')])), nil
			}}
		}
		fx.specs = append(fx.specs, hierarchy.NewSpec(attr, levels...))
	}
	return fx
}

// table builds a table holding the given rows. Domains are deliberately
// NOT pre-registered: the dictionary holds exactly the values the rows
// carry, in first-appearance order, just like a table rebuilt after a
// delta — so these tests cover dictionary-code permutation.
func (fx *deltaFixture) table(t *testing.T, rows [][]int32) *relation.Table {
	t.Helper()
	tab := relation.MustNewTable(fx.names...)
	rec := make([]string, len(fx.names))
	for _, r := range rows {
		for i, c := range r {
			rec[i] = value(int(c))
		}
		if err := tab.AppendRow(rec); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// bind attaches the fixture's specs to a table, producing a run input.
func (fx *deltaFixture) bind(t *testing.T, tab *relation.Table) Input {
	t.Helper()
	cols := make([]int, len(fx.names))
	hs := make([]*hierarchy.Hierarchy, len(fx.names))
	for i := range fx.names {
		cols[i] = i
		h, err := fx.specs[i].Bind(tab.Dict(i))
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}
	return NewInput(tab, cols, hs, fx.k, fx.supp)
}

// deltaRows pre-generalizes rows through a full-domain binding (every
// domain value registered), the job anonymize-level callers do through
// their hierarchy builders.
func (fx *deltaFixture) deltaRows(t *testing.T, rows [][]int32) []DeltaRow {
	t.Helper()
	full := relation.MustNewTable(fx.names...)
	hs := make([]*hierarchy.Hierarchy, len(fx.names))
	for i, d := range fx.domains {
		for v := 0; v < d; v++ {
			full.Dict(i).Encode(value(v))
		}
		h, err := fx.specs[i].Bind(full.Dict(i))
		if err != nil {
			t.Fatal(err)
		}
		hs[i] = h
	}
	out := make([]DeltaRow, len(rows))
	for r, row := range rows {
		gen := make([][]string, len(fx.names))
		for i, c := range row {
			base := value(int(c))
			gen[i] = make([]string, hs[i].Height()+1)
			for l := 0; l <= hs[i].Height(); l++ {
				g, err := hs[i].GeneralizeValue(l, base)
				if err != nil {
					t.Fatal(err)
				}
				gen[i][l] = g
			}
		}
		out[r] = DeltaRow{Gen: gen}
	}
	return out
}

// runState assembles the persistent state of a completed cold run.
func runState(in *Input, cap *StateCapture) *resilience.RunState {
	cols := make([]string, len(in.QI))
	for i, q := range in.QI {
		cols[i] = q.H.Attr()
	}
	return &resilience.RunState{
		Cols:        cols,
		K:           in.K,
		MaxSuppress: in.MaxSuppress,
		Rows:        in.Table.NumRows(),
		Base:        CaptureBase(in),
		Records:     cap.Records(),
	}
}

// randomRows draws n random rows over the fixture's domains.
func (fx *deltaFixture) randomRows(rng *rand.Rand, n int) [][]int32 {
	rows := make([][]int32, n)
	for r := range rows {
		row := make([]int32, len(fx.domains))
		for i, d := range fx.domains {
			row[i] = int32(rng.Intn(d))
		}
		rows[r] = row
	}
	return rows
}

// splitDelta removes roughly removeFrac of rows and adds nAdd fresh ones,
// returning the edited row set plus the removed and added rows.
func (fx *deltaFixture) splitDelta(rng *rand.Rand, rows [][]int32, removeFrac float64, nAdd int) (edited, removed, added [][]int32) {
	for _, r := range rows {
		if rng.Float64() < removeFrac {
			removed = append(removed, r)
		} else {
			edited = append(edited, r)
		}
	}
	added = fx.randomRows(rng, nAdd)
	edited = append(edited, added...)
	return edited, removed, added
}

// TestDeltaBitIdenticalToCold is the tentpole's contract: a delta re-run
// produces Solutions AND Stats bit-identical to a cold recomputation of
// the edited table, across kernels × parallelism, for small (screen-heavy)
// and large (revalidation-heavy, verdict-flipping) deltas alike.
func TestDeltaBitIdenticalToCold(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	parallelisms := []int{1, 2, 0}
	for trial := 0; trial < 12; trial++ {
		fx := newDeltaFixture(rng, 2+rng.Intn(2), int64(2+rng.Intn(3)), int64(rng.Intn(2)))
		baseRows := fx.randomRows(rng, 25+rng.Intn(40))
		removeFrac := 0.08
		if trial%3 == 2 {
			removeFrac = 0.5 // large deltas flip verdicts and force revalidation
		}
		editedRows, removedRows, addedRows := fx.splitDelta(rng, baseRows, removeFrac, rng.Intn(5))

		// Cold run on T captures the state.
		coldIn := fx.bind(t, fx.table(t, baseRows))
		coldIn.Capture = &StateCapture{}
		if _, err := Run(coldIn, Basic); err != nil {
			t.Fatalf("trial %d: cold run: %v", trial, err)
		}
		state := runState(&coldIn, coldIn.Capture)

		removedDelta := fx.deltaRows(t, removedRows)
		addedDelta := fx.deltaRows(t, addedRows)
		for _, p := range parallelisms {
			for _, sparse := range []bool{false, true} {
				editedTab := fx.table(t, editedRows)
				want, err := func() (*Result, error) {
					in := fx.bind(t, editedTab)
					in.Parallelism, in.SparseKernel = p, sparse
					return Run(in, Basic)
				}()
				if err != nil {
					t.Fatalf("trial %d p=%d sparse=%v: cold rerun: %v", trial, p, sparse, err)
				}
				din := fx.bind(t, editedTab)
				din.Parallelism, din.SparseKernel = p, sparse
				din.Delta = &DeltaRun{State: state, Added: addedDelta, Removed: removedDelta}
				din.Capture = &StateCapture{}
				got, err := Run(din, Basic)
				if err != nil {
					t.Fatalf("trial %d p=%d sparse=%v: delta run: %v", trial, p, sparse, err)
				}
				if !reflect.DeepEqual(got.Solutions, want.Solutions) {
					t.Fatalf("trial %d p=%d sparse=%v: delta solutions differ\ngot  %v\nwant %v",
						trial, p, sparse, got.Solutions, want.Solutions)
				}
				if got.Stats != want.Stats {
					t.Fatalf("trial %d p=%d sparse=%v: delta stats differ\ngot  %+v\nwant %+v",
						trial, p, sparse, got.Stats, want.Stats)
				}
				if got.Delta == nil {
					t.Fatalf("trial %d: delta run reported no counters", trial)
				}
				if got.Delta.NodesScreened+got.Delta.NodesRevalidated != int64(got.Stats.NodesChecked) {
					t.Fatalf("trial %d: screened %d + revalidated %d != checked %d",
						trial, got.Delta.NodesScreened, got.Delta.NodesRevalidated, got.Stats.NodesChecked)
				}
				if want.Delta != nil {
					t.Fatalf("trial %d: cold run reported delta counters", trial)
				}
			}
		}
	}
}

// TestDeltaChainedStates: the state a delta run emits (patched base groups
// + screen-updated + revalidated + reconciled records) supports a further
// delta, still bit-identical to cold.
func TestDeltaChainedStates(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 8; trial++ {
		fx := newDeltaFixture(rng, 2, int64(2+rng.Intn(2)), 0)
		rows := fx.randomRows(rng, 30+rng.Intn(30))
		coldIn := fx.bind(t, fx.table(t, rows))
		coldIn.Capture = &StateCapture{}
		if _, err := Run(coldIn, Basic); err != nil {
			t.Fatal(err)
		}
		state := runState(&coldIn, coldIn.Capture)

		for hop := 0; hop < 3; hop++ {
			edited, removed, added := fx.splitDelta(rng, rows, 0.1, rng.Intn(4))
			editedTab := fx.table(t, edited)
			din := fx.bind(t, editedTab)
			din.Delta = &DeltaRun{State: state, Added: fx.deltaRows(t, added), Removed: fx.deltaRows(t, removed)}
			din.Capture = &StateCapture{}
			got, err := Run(din, Basic)
			if err != nil {
				t.Fatalf("trial %d hop %d: %v", trial, hop, err)
			}
			coldEd := fx.bind(t, fx.table(t, edited))
			want, err := Run(coldEd, Basic)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Solutions, want.Solutions) || got.Stats != want.Stats {
				t.Fatalf("trial %d hop %d: chained delta diverged from cold\ngot  %v %+v\nwant %v %+v",
					trial, hop, got.Solutions, got.Stats, want.Solutions, want.Stats)
			}
			// Next hop's state: what the delta run captured plus the
			// reconciled untouched records.
			state = &resilience.RunState{
				Cols:        state.Cols,
				K:           state.K,
				MaxSuppress: state.MaxSuppress,
				Rows:        editedTab.NumRows(),
				Base:        din.Delta.BaseGroups(),
				Records:     append(din.Capture.Records(), din.Delta.UntouchedRecords(&din)...),
			}
			rows = edited
		}
	}
}

// TestDeltaEmptyDelta: an empty delta screens every node (nothing can have
// changed) and reports no rescanned rows beyond the empty delta itself.
func TestDeltaEmptyDelta(t *testing.T) {
	fx := newDeltaFixture(rand.New(rand.NewSource(5)), 2, 2, 0)
	rows := fx.randomRows(rand.New(rand.NewSource(6)), 40)
	coldIn := fx.bind(t, fx.table(t, rows))
	coldIn.Capture = &StateCapture{}
	want, err := Run(coldIn, Basic)
	if err != nil {
		t.Fatal(err)
	}
	din := fx.bind(t, fx.table(t, rows))
	din.Delta = &DeltaRun{State: runState(&coldIn, coldIn.Capture)}
	got, err := Run(din, Basic)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Solutions, want.Solutions) || got.Stats != want.Stats {
		t.Fatalf("empty delta diverged from original run")
	}
	if got.Delta.NodesRevalidated != 0 {
		t.Fatalf("empty delta revalidated %d nodes, want 0", got.Delta.NodesRevalidated)
	}
	if got.Delta.RowsRescanned != 0 {
		t.Fatalf("empty delta rescanned %d rows, want 0", got.Delta.RowsRescanned)
	}
}

// TestDeltaKillResumeBitIdentical: a delta run killed at every checkpoint
// boundary and resumed still matches the cold run on the edited table.
func TestDeltaKillResumeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	fx := newDeltaFixture(rng, 3, 2, 0)
	rows := fx.randomRows(rng, 40)
	edited, removed, added := fx.splitDelta(rng, rows, 0.1, 3)

	coldIn := fx.bind(t, fx.table(t, rows))
	coldIn.Capture = &StateCapture{}
	if _, err := Run(coldIn, Basic); err != nil {
		t.Fatal(err)
	}
	state := runState(&coldIn, coldIn.Capture)
	removedDelta, addedDelta := fx.deltaRows(t, removed), fx.deltaRows(t, added)

	editedTab := fx.table(t, edited)
	want, err := Run(fx.bind(t, editedTab), Basic)
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range []int{1, 2} {
		dir := t.TempDir()
		completed := false
		const maxSaves = 100
		for b := 1; b <= maxSaves; b++ {
			path := filepath.Join(dir, fmt.Sprintf("kill-%d.ckpt", b))
			ck := resilience.NewCheckpointer(path)
			ctx, cancel := context.WithCancel(context.Background())
			saves := 0
			ck.AfterSave = func(*resilience.Snapshot) {
				saves++
				if saves == b {
					cancel()
				}
			}
			in := fx.bind(t, editedTab)
			in.Parallelism = p
			in.Ctx = ctx
			in.Check = ck
			in.Delta = &DeltaRun{State: state, Added: addedDelta, Removed: removedDelta}
			res, err := Run(in, Basic)
			cancel()
			if err == nil {
				if !reflect.DeepEqual(res.Solutions, want.Solutions) || res.Stats != want.Stats {
					t.Fatalf("p=%d kill=%d: uninterrupted delta run differs from cold", p, b)
				}
				completed = true
				break
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("p=%d kill=%d: run failed with %v, want cancellation", p, b, err)
			}
			snap, lerr := resilience.Load(path)
			if lerr != nil {
				t.Fatalf("p=%d kill=%d: loading snapshot: %v", p, b, lerr)
			}
			re := fx.bind(t, editedTab)
			re.Parallelism = p
			re.Resume = snap
			re.Check = resilience.NewCheckpointer(path)
			re.Delta = &DeltaRun{State: state, Added: addedDelta, Removed: removedDelta}
			re.Capture = &StateCapture{}
			got, rerr := Run(re, Basic)
			if rerr != nil {
				t.Fatalf("p=%d kill=%d: resume from %s boundary failed: %v", p, b, snap.Boundary, rerr)
			}
			if !reflect.DeepEqual(got.Solutions, want.Solutions) {
				t.Fatalf("p=%d kill=%d (%s): resumed delta solutions differ\ngot  %v\nwant %v",
					p, b, snap.Boundary, got.Solutions, want.Solutions)
			}
			if got.Stats != want.Stats {
				t.Fatalf("p=%d kill=%d (%s): resumed delta stats differ\ngot  %+v\nwant %+v",
					p, b, snap.Boundary, got.Stats, want.Stats)
			}
			if _, serr := os.Stat(path); !os.IsNotExist(serr) {
				t.Fatalf("p=%d kill=%d: resumed run left its checkpoint behind", p, b)
			}
		}
		if !completed {
			t.Fatalf("p=%d: run never outlived %d checkpoint kills", p, maxSaves)
		}
	}
}

// TestDeltaValidation: unsupported variants and configurations, and states
// that do not describe the table, are rejected up front.
func TestDeltaValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	fx := newDeltaFixture(rng, 2, 2, 0)
	rows := fx.randomRows(rng, 30)
	coldIn := fx.bind(t, fx.table(t, rows))
	coldIn.Capture = &StateCapture{}
	if _, err := Run(coldIn, Basic); err != nil {
		t.Fatal(err)
	}
	state := runState(&coldIn, coldIn.Capture)

	fresh := func() Input {
		in := fx.bind(t, fx.table(t, rows))
		in.Delta = &DeltaRun{State: state}
		return in
	}
	for _, v := range []Variant{SuperRoots, Cube} {
		if _, err := Run(fresh(), v); err == nil {
			t.Fatalf("delta run under %s succeeded", v)
		}
	}
	in := fresh()
	in.ScanOverride = func(dims, levels []int) (*relation.FreqSet, error) { return nil, nil }
	if _, err := Run(in, Basic); err == nil {
		t.Fatal("delta run with ScanOverride succeeded")
	}
	in = fresh()
	in.Budget = resilience.NewAccountant(1 << 20)
	if _, err := Run(in, Basic); err == nil {
		t.Fatal("delta run with Budget succeeded")
	}
	in = fresh()
	in.Delta.State = nil
	if _, err := Run(in, Basic); err == nil {
		t.Fatal("delta run without state succeeded")
	}
	// A state whose row count cannot reconcile with the table is rejected.
	in = fresh()
	bad := *state
	bad.Rows = state.Rows + 1
	in.Delta.State = &bad
	if _, err := Run(in, Basic); err == nil {
		t.Fatal("delta run against a state with the wrong row count succeeded")
	}
	// Mismatched k.
	in = fresh()
	bad = *state
	bad.K = state.K + 1
	in.Delta.State = &bad
	if _, err := Run(in, Basic); err == nil {
		t.Fatal("delta run against a state with a different k succeeded")
	}
}
