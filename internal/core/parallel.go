package core

// This file implements intra-run parallelism. Iteration i of Fig. 8
// decomposes into one independent candidate graph per i-attribute subset
// ("family"): families share no nodes and no edges, and the breadth-first
// search of one family never reads another's state. The parallel driver
// therefore runs each family's search on its own worker with its own
// Stats, then merges survivors and counters in family order. Because the
// per-family search is byte-for-byte the sequential search, the survivor
// sets — and hence the solutions — are identical at every worker count;
// the Stats counters are per-family sums, so they are identical too.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"incognito/internal/lattice"
	"incognito/internal/relation"
	"incognito/internal/trace"
)

// Workers resolves the Input's Parallelism knob to a concrete worker
// count: 0 means GOMAXPROCS, 1 (or less) means strictly sequential, and
// anything larger is used as given.
func (in *Input) Workers() int {
	switch {
	case in.Parallelism == 0:
		return runtime.GOMAXPROCS(0)
	case in.Parallelism < 1:
		return 1
	}
	return in.Parallelism
}

// runIndexed executes fn(0), …, fn(n-1), on up to `workers` goroutines
// pulling indices from a shared atomic counter. workers ≤ 1 degenerates to
// a plain loop on the calling goroutine.
func runIndexed(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// rootFreqMaker builds the root frequency-set provider for one search
// component, given the component's roots; all the counter writes of the
// provider must go to stats, so the parallel driver can hand every family
// its own Stats and merge them deterministically.
type rootFreqMaker func(roots []*lattice.Node, stats *Stats) func(*lattice.Node) *relation.FreqSet

// searchGraphFamilies runs the Fig. 8 breadth-first search over a whole
// candidate graph. At Workers() ≤ 1 it takes the sequential reference path
// — one height-ordered queue over the full graph. Otherwise it searches
// the graph's families concurrently and merges the per-family survivor
// maps and Stats in family order. Both paths return identical survivors
// and identical counters (see the package comment above). Each component
// search records a child span of parent — one "component" span covering
// the whole graph on the sequential path, one "family" span per attribute
// subset on the parallel path — carrying that component's work counters,
// and the worker loop checks the input's context before starting a family.
func searchGraphFamilies(in *Input, g *lattice.Graph, maker rootFreqMaker, stats *Stats, parent *trace.Span) map[int]bool {
	if g.Len() == 0 {
		return map[int]bool{}
	}
	workers := in.Workers()
	fams := g.Families()
	if workers <= 1 || len(fams) == 1 {
		sp := parent.Start("component")
		sp.SetAttr("families", len(fams))
		sp.SetAttr("nodes", g.Len())
		before := *stats
		roots := g.Roots()
		surv := searchComponent(in, g, g.Nodes(), roots, maker(roots, stats), stats)
		stats.Sub(before).recordOn(sp)
		sp.End()
		return surv
	}
	results := make([]map[int]bool, len(fams))
	famStats := make([]Stats, len(fams))
	runIndexed(workers, len(fams), func(i int) {
		if in.Err() != nil {
			return // cancelled: the driver discards everything anyway
		}
		nodes := fams[i]
		sp := parent.Start("family")
		sp.SetAttr("dims", nodes[0].DimsKey())
		sp.SetAttr("nodes", len(nodes))
		roots := familyRoots(g, nodes)
		st := &famStats[i]
		results[i] = searchComponent(in, g, nodes, roots, maker(roots, st), st)
		st.recordOn(sp)
		sp.End()
	})
	surv := make(map[int]bool, g.Len())
	for i := range results {
		for id, ok := range results[i] {
			surv[id] = ok
		}
		stats.Add(famStats[i])
	}
	return surv
}

// familyRoots returns the roots (no incoming edge) among one family's
// nodes, in ID order — the same relative order g.Roots() yields them in.
func familyRoots(g *lattice.Graph, nodes []*lattice.Node) []*lattice.Node {
	var out []*lattice.Node
	for _, n := range nodes {
		if len(g.Down(n.ID)) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// groupRootsByFamily partitions roots by attribute subset, preserving
// first-seen order, so the super-roots provider scans families in the same
// deterministic order whether it is handed one family or the whole graph.
func groupRootsByFamily(roots []*lattice.Node) [][]*lattice.Node {
	idx := make(map[string]int)
	var out [][]*lattice.Node
	for _, r := range roots {
		k := r.DimsKey()
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], r)
	}
	return out
}
