package core

// This file implements intra-run parallelism. Iteration i of Fig. 8
// decomposes into one independent candidate graph per i-attribute subset
// ("family"): families share no nodes and no edges, and the breadth-first
// search of one family never reads another's state. The parallel driver
// therefore schedules each family as one task of the work-stealing
// scheduler (internal/sched) with its own Stats, then merges survivors
// and counters in family order. Families have wildly uneven costs — one
// fails deep while its siblings pass at the roots — which is exactly what
// stealing absorbs and a fixed shard assignment serialized on. Because
// the per-family search is byte-for-byte the sequential search and the
// merge runs in family-index order on the coordinator, the survivor sets
// — and hence the solutions — are identical at every worker count; the
// Stats counters are per-family sums, so they are identical too.

import (
	"fmt"
	"runtime"

	"incognito/internal/faultinject"
	"incognito/internal/lattice"
	"incognito/internal/relation"
	"incognito/internal/resilience"
	"incognito/internal/sched"
	"incognito/internal/trace"
)

// Workers resolves the Input's Parallelism knob to a concrete worker
// count: 0 means GOMAXPROCS, 1 (or less) means strictly sequential, and
// anything larger is used as given.
func (in *Input) Workers() int {
	switch {
	case in.Parallelism == 0:
		return runtime.GOMAXPROCS(0)
	case in.Parallelism < 1:
		return 1
	}
	return in.Parallelism
}

// workersFor clamps the resolved worker count to the number of scheduled
// tasks, so a phase never spawns a goroutine that could not receive work
// (the scheduler clamps again defensively; this keeps the accounting and
// the trace attrs honest at the call sites).
func (in *Input) workersFor(tasks int) int {
	w := in.Workers()
	if w > tasks {
		w = tasks
	}
	if w < 1 {
		return 1
	}
	return w
}

// parallelFloorRows is the task-size floor for parallel dispatch,
// measured in base-table rows (the unit every task's cost scales with: a
// family search scans the table, a cube margin walks a frequency set no
// larger than it). Phases over inputs smaller than this run inline on
// the calling goroutine — same task structure, same results, no
// goroutine or scheduling overhead. Measured on this repo's datasets
// (BenchmarkDispatchFloor): below ~100 rows the goroutine handoff costs
// about half as much as the tasks themselves, at ~500 rows it is down to
// ~10% of task cost and shrinking linearly with table size, so above the
// floor dispatch overhead is noise next to even a modest speedup.
const parallelFloorRows = 512

// schedMetrics returns the run's scheduler-metrics handle (nil — i.e.
// disabled — unless telemetry is on).
func (in *Input) schedMetrics() *sched.Metrics { return in.Metrics.Sched() }

// floorWorkers applies the task-size floor: phases whose per-task work is
// bounded by a table this small run inline regardless of the parallelism
// knob.
func (in *Input) floorWorkers(workers int) int {
	if in.Table.NumRows() < parallelFloorRows {
		return 1
	}
	return workers
}

// runIndexedSafe executes fn(0), …, fn(n-1) on the work-stealing
// scheduler with worker panic isolation: each index runs under a recover
// wrapper that converts a panic into a *resilience.PanicError naming the
// index's site and flips the input's abort flag, so sibling workers drain
// through their ordinary Err checks instead of crashing the process. The
// lowest-index panic is returned; results committed by other indices are
// discarded by the caller alongside the error, so no partial state
// escapes. The recover wrapper also guards the inline (workers ≤ 1) path,
// so panic semantics do not depend on the dispatch decision.
func runIndexedSafe(in *Input, workers, n int, site func(i int) string, fn func(i int)) error {
	panics := make([]*resilience.PanicError, n)
	sched.Run(in.schedMetrics(), workers, n, func(_, i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = resilience.AsPanicError(site(i), r)
				in.abortSiblings()
			}
		}()
		fn(i)
	})
	for _, pe := range panics {
		if pe != nil {
			return pe
		}
	}
	return nil
}

// runGraphSafe is runIndexedSafe over a dependency DAG (sched.RunGraph):
// children[i] lists the tasks unlocked by task i, and task indices must
// be topologically ordered. A panicked task aborts the siblings; its
// dependents still "run" but drain immediately through the Err check
// their fn must perform, so the pool always terminates.
func runGraphSafe(in *Input, workers, n int, children [][]int, site func(i int) string, fn func(i int)) error {
	panics := make([]*resilience.PanicError, n)
	sched.RunGraph(in.schedMetrics(), workers, n, children, func(_, i int) {
		defer func() {
			if r := recover(); r != nil {
				panics[i] = resilience.AsPanicError(site(i), r)
				in.abortSiblings()
			}
		}()
		fn(i)
	})
	for _, pe := range panics {
		if pe != nil {
			return pe
		}
	}
	return nil
}

// rootFreqMaker builds the root frequency-set provider for one search
// component, given the component's roots; all the counter writes of the
// provider must go to stats, so the parallel driver can hand every family
// its own Stats and merge them deterministically.
type rootFreqMaker func(roots []*lattice.Node, stats *Stats) func(*lattice.Node) *relation.FreqSet

// searchGraphFamilies runs the Fig. 8 breadth-first search over a whole
// candidate graph. At Workers() ≤ 1 it takes the sequential reference path
// — one height-ordered queue over the full graph. Otherwise it searches
// the graph's families concurrently and merges the per-family survivor
// maps and Stats in family order. Both paths return identical survivors
// and identical counters (see the package comment above). Each component
// search records a child span of parent — one "component" span covering
// the whole graph on the sequential path, one "family" span per attribute
// subset on the parallel path — carrying that component's work counters,
// and the worker loop checks the input's context before starting a family.
//
// rc restores a resumed snapshot's partial state for this iteration (nil
// otherwise): recorded families force the family path regardless of worker
// count, a frontier forces the sequential path — either way the results are
// identical, per the package comment. ck, when non-nil, saves a snapshot as
// each family (or breadth-first level) completes. complete is false when
// the search bailed early at the memory budget's hard stop; cancellation is
// reported by in.Err as before, and a worker panic comes back as the error.
func searchGraphFamilies(in *Input, g *lattice.Graph, maker rootFreqMaker, stats *Stats, parent *trace.Span, rc *iterResume, ck *iterCkpt, proven map[int]bool) (surv map[int]bool, complete bool, err error) {
	if g.Len() == 0 {
		return map[int]bool{}, true, nil
	}
	workers := in.Workers()
	fams := g.Families()
	useFamilies := workers > 1 && len(fams) > 1
	if rc != nil && len(rc.families) > 0 {
		useFamilies = true
	}
	if rc != nil && rc.frontier != nil {
		useFamilies = false
	}
	if !useFamilies {
		sp := parent.Start("component")
		sp.SetAttr("families", len(fams))
		sp.SetAttr("nodes", g.Len())
		before := *stats
		roots := g.Roots()
		var fr *resilience.Frontier
		if rc != nil {
			fr = rc.frontier
		}
		surv, complete, err = searchComponent(in, g, g.Nodes(), roots, maker, stats, ck, fr, proven)
		stats.Sub(before).recordOn(sp)
		sp.End()
		return surv, complete, err
	}
	restored := make(map[string]*resilience.FamilyState)
	if rc != nil {
		for i := range rc.families {
			restored[dimsKey(rc.families[i].Dims)] = &rc.families[i]
		}
		ck.preload(rc.families)
	}
	results := make([]map[int]bool, len(fams))
	famStats := make([]Stats, len(fams))
	completes := make([]bool, len(fams))
	errs := make([]error, len(fams))
	// The family *path* is chosen by the parallelism knob above; whether it
	// actually dispatches goroutines is a separate decision, clamped to the
	// task count and floored by input size. Results are identical either
	// way — the inline loop runs the same tasks in index order.
	dispatch := in.floorWorkers(in.workersFor(len(fams)))
	werr := runIndexedSafe(in, dispatch, len(fams), func(i int) string { return fmt.Sprintf("family[%d]", i) }, func(i int) {
		nodes := fams[i]
		if fs := restored[dimsKey(nodes[0].Dims)]; fs != nil {
			// This family completed before the checkpoint: reconstruct its
			// survivor map from the recorded failures and take its counters
			// verbatim instead of re-searching it.
			m := make(map[int]bool, len(nodes))
			for _, nd := range nodes {
				m[nd.ID] = true
			}
			for _, k := range fs.Failed {
				nd := g.Lookup(k.Dims, k.Levels)
				if nd == nil {
					errs[i] = fmt.Errorf("core: resume snapshot names a node %v/%v absent from iteration graph", k.Dims, k.Levels)
					return
				}
				m[nd.ID] = false
			}
			results[i] = m
			famStats[i] = statsFromMap(fs.Stats)
			completes[i] = true
			sp := parent.Start("family")
			sp.SetAttr("dims", nodes[0].DimsKey())
			sp.SetAttr("nodes", len(nodes))
			sp.SetAttr("restored", true)
			famStats[i].recordOn(sp)
			sp.End()
			return
		}
		if in.Err() != nil {
			return // cancelled: the driver discards everything anyway
		}
		if in.Budget.Exhausted() {
			return // hard stop: reported as complete=false below
		}
		faultinject.Point("core.family")
		sp := parent.Start("family")
		sp.SetAttr("dims", nodes[0].DimsKey())
		sp.SetAttr("nodes", len(nodes))
		roots := familyRoots(g, nodes)
		st := &famStats[i]
		results[i], completes[i], errs[i] = searchComponent(in, g, nodes, roots, maker, st, nil, nil, nil)
		st.recordOn(sp)
		sp.End()
		if completes[i] && in.Err() == nil {
			ck.addFamily(familyState(nodes, results[i], *st))
		}
	})
	if werr != nil {
		// Rethrow the typed worker panic so the variant's run-level guard
		// prefixes the span path with the run root, same as the cube and
		// materialization waves.
		panic(werr)
	}
	for _, e := range errs {
		if e != nil {
			return nil, false, e
		}
	}
	surv = make(map[int]bool, g.Len())
	complete = true
	for i := range results {
		for id, ok := range results[i] {
			surv[id] = ok
		}
		stats.Add(famStats[i])
		if !completes[i] {
			complete = false
		}
	}
	return surv, complete, nil
}

// familyState records one completed family for a checkpoint: its attribute
// subset, the candidates that failed the k-anonymity check (in node-ID
// order), and the search counters it spent.
func familyState(nodes []*lattice.Node, surv map[int]bool, st Stats) resilience.FamilyState {
	fs := resilience.FamilyState{Dims: append([]int(nil), nodes[0].Dims...), Stats: statsToMap(st)}
	for _, nd := range nodes {
		if !surv[nd.ID] {
			fs.Failed = append(fs.Failed, nodeKey(nd))
		}
	}
	return fs
}

// familyRoots returns the roots (no incoming edge) among one family's
// nodes, in ID order — the same relative order g.Roots() yields them in.
func familyRoots(g *lattice.Graph, nodes []*lattice.Node) []*lattice.Node {
	var out []*lattice.Node
	for _, n := range nodes {
		if len(g.Down(n.ID)) == 0 {
			out = append(out, n)
		}
	}
	return out
}

// groupRootsByFamily partitions roots by attribute subset, preserving
// first-seen order, so the super-roots provider scans families in the same
// deterministic order whether it is handed one family or the whole graph.
func groupRootsByFamily(roots []*lattice.Node) [][]*lattice.Node {
	idx := make(map[string]int)
	var out [][]*lattice.Node
	for _, r := range roots {
		k := r.DimsKey()
		i, ok := idx[k]
		if !ok {
			i = len(out)
			idx[k] = i
			out = append(out, nil)
		}
		out[i] = append(out[i], r)
	}
	return out
}
