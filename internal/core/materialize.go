package core

import (
	"fmt"
	"sort"

	"incognito/internal/faultinject"
	"incognito/internal/lattice"
	"incognito/internal/relation"
	"incognito/internal/resilience"
)

// This file implements the paper's §7 future-work proposal: "the
// performance of Incognito can be enhanced even more by strategically
// materializing portions of the data cube", citing Harinarayan, Rajaraman
// and Ullman's greedy view selection. A MaterializedSet is a partial cube:
// zero-generalization frequency sets for a chosen family of QI subsets,
// selected greedily under a total size budget (measured in groups, i.e.
// frequency-set rows). Budget 0 degenerates to Basic Incognito (every root
// scanned); an unbounded budget degenerates to Cube Incognito (§3.3.2).

// matView is one materialized view: a QI subset (by position) and its
// zero-generalization frequency set.
type matView struct {
	dims []int
	f    *relation.FreqSet
}

// MaterializedSet holds the selected views and serves root frequency sets
// either from a materialized margin or by telling the caller to scan.
type MaterializedSet struct {
	in    *Input
	views []*matView
	byKey map[string]*matView
	// BuildStats records the selection and materialization cost.
	BuildStats Stats
}

// MaterializeBudget selects and materializes views greedily under the
// budget: repeatedly pick the view with the best benefit per unit size,
// where a view's benefit is the scan work it saves for the subsets it can
// answer by margining (Harinarayan-style, with |T| as the cost of an
// unanswered subset). Sizes are estimated from a sample scan; the chosen
// views are then materialized exactly, so correctness never depends on the
// estimates.
func MaterializeBudget(in *Input, budget int64) *MaterializedSet {
	in.installAbort()
	m := &MaterializedSet{in: in, byKey: make(map[string]*matView)}
	n := len(in.QI)
	if budget <= 0 || n == 0 {
		return m
	}
	sp := in.StartSpan("materialize")
	sp.SetAttr("budget", budget)
	in.Progress.SetPhase("materialize")
	defer sp.End()
	full := (1 << n) - 1
	rows := int64(in.Table.NumRows())

	estSpan := sp.Start("estimate_sizes")
	est := m.estimateSizes()
	estSpan.End()
	selSpan := sp.Start("select_views")

	// Greedy selection. costOf[s] = cost of the cheapest way to answer s: a
	// selected superset's size, or a scan. A scan is priced above reading
	// an equal-sized aggregate because it re-encodes every base tuple
	// through the dimension tables; the markup also makes an unbounded
	// budget degenerate to the full cube (§3.3.2), as it should.
	scanCost := rows + rows/4 + 1
	costOf := make([]int64, full+1)
	for s := 1; s <= full; s++ {
		costOf[s] = scanCost
	}
	remaining := budget
	selected := make(map[int]int64) // mask → estimated size
	for {
		bestMask, bestSize := 0, int64(0)
		var bestScore float64
		for s := 1; s <= full; s++ {
			if _, done := selected[s]; done || est[s] > remaining {
				continue
			}
			var benefit int64
			for t := 1; t <= full; t++ {
				if t&s == t && costOf[t] > est[s] { // t ⊆ s and s improves it
					benefit += costOf[t] - est[s]
				}
			}
			if benefit <= 0 {
				continue
			}
			score := float64(benefit) / float64(est[s]+1)
			if bestMask == 0 || score > bestScore {
				bestMask, bestSize, bestScore = s, est[s], score
			}
		}
		if bestMask == 0 {
			break
		}
		selected[bestMask] = bestSize
		remaining -= bestSize
		for t := 1; t <= full; t++ {
			if t&bestMask == t && costOf[t] > bestSize {
				costOf[t] = bestSize
			}
		}
	}

	selSpan.SetAttr("views", len(selected))
	selSpan.End()

	// Materialize the chosen views exactly, largest subset first so smaller
	// chosen views can margin from larger ones instead of rescanning.
	masks := make([]int, 0, len(selected))
	for mask := range selected {
		masks = append(masks, mask)
	}
	sort.Slice(masks, func(i, j int) bool {
		pi, pj := popcount(masks[i]), popcount(masks[j])
		if pi != pj {
			return pi > pj
		}
		return masks[i] < masks[j]
	})
	// Views of equal subset size can never be strict supersets of each
	// other, so every view's margin source lives in an earlier (larger)
	// size wave. Each wave is therefore materialized in parallel without
	// changing which source any view margins from — the scan/rollup mix in
	// BuildStats is identical at every worker count. (The wave boundary
	// stays: unlike the cube, which source a view margins from depends on
	// estimated sizes of whatever is already materialized, so the
	// dependency structure is dynamic, not a static DAG. Within a wave the
	// work-stealing scheduler still rebalances the uneven view costs.)
	workers := in.floorWorkers(in.Workers())
	for lo := 0; lo < len(masks); {
		if in.Err() != nil {
			// Cancelled: whatever was materialized so far is still a valid
			// (smaller) partial cube, so just stop selecting more.
			return m
		}
		if !in.Budget.AllowMaterialize() {
			// Over the soft memory budget: shed the remaining waves. The
			// partial set is still exact; unanswered subsets fall back to
			// scans, exactly like a smaller budget would have.
			sp.SetAttr("shed_views", len(masks)-lo)
			return m
		}
		hi := lo
		for hi < len(masks) && popcount(masks[hi]) == popcount(masks[lo]) {
			hi++
		}
		wave := masks[lo:hi]
		waveSpan := sp.Start("wave")
		waveSpan.SetAttr("subset_size", popcount(masks[lo]))
		waveSpan.SetAttr("views", len(wave))
		built := make([]*matView, len(wave))
		scanned := make([]bool, len(wave))
		werr := runIndexedSafe(in, workers, len(wave), func(i int) string { return fmt.Sprintf("materialize_wave[%d]", i) }, func(i int) {
			if in.Err() != nil {
				return
			}
			faultinject.Point("core.materialize_wave")
			dims := dimsOfMask(wave[i], n)
			if super := m.lookupSuperset(dims); super != nil {
				built[i] = &matView{dims: dims, f: marginTo(super, dims)}
			} else {
				built[i] = &matView{dims: dims, f: in.ScanFreq(dims, make([]int, len(dims)))}
				scanned[i] = true
			}
		})
		if werr != nil {
			// A wave worker panicked: commit nothing from this wave and
			// re-panic typed; the API-boundary guards convert it.
			waveSpan.End()
			panic(werr)
		}
		if in.Err() != nil {
			// Cancelled mid-wave: drop the incomplete wave so the set never
			// holds nil views.
			waveSpan.End()
			return m
		}
		for i, v := range built {
			m.views = append(m.views, v)
			m.byKey[dimsKey(v.dims)] = v
			in.grantFreq(v.f)
			if scanned[i] {
				m.BuildStats.TableScans++
				waveSpan.Add(CounterTableScans, 1)
			} else {
				m.BuildStats.Rollups++
				waveSpan.Add(CounterRollups, 1)
			}
			m.BuildStats.CubeFreqSets++
			waveSpan.Add(CounterCubeFreqSets, 1)
		}
		waveSpan.End()
		lo = hi
	}
	return m
}

// estimateSizes scans a bounded sample once and counts distinct groups per
// subset. For the QI sizes this module targets (≤ ~10) the 2^n counters per
// row are affordable; the sample keeps the row factor bounded.
func (m *MaterializedSet) estimateSizes() []int64 {
	in := m.in
	n := len(in.QI)
	full := (1 << n) - 1
	rows := in.Table.NumRows()
	const maxSample = 4096
	stride := 1
	if rows > maxSample {
		stride = rows / maxSample
	}
	seen := make([]map[string]bool, full+1)
	for s := 1; s <= full; s++ {
		seen[s] = make(map[string]bool)
	}
	codes := make([]int32, n)
	buf := make([]byte, 4*n)
	sampled := 0
	for r := 0; r < rows; r += stride {
		sampled++
		for i, q := range in.QI {
			codes[i] = in.Table.Code(r, q.Col)
		}
		for s := 1; s <= full; s++ {
			j := 0
			for i := 0; i < n; i++ {
				if s&(1<<i) != 0 {
					put32(buf, j, codes[i])
					j++
				}
			}
			seen[s][string(buf[:4*j])] = true
		}
	}
	est := make([]int64, full+1)
	for s := 1; s <= full; s++ {
		e := int64(len(seen[s]))
		if sampled > 0 && stride > 1 {
			// Linear scale-up, clamped to the table size: biased high for
			// low-cardinality subsets, which only makes the greedy more
			// conservative about the budget.
			e = e * int64(rows) / int64(sampled)
		}
		if e < int64(len(seen[s])) {
			e = int64(len(seen[s]))
		}
		if e > int64(rows) {
			e = int64(rows)
		}
		est[s] = e
	}
	return est
}

func put32(buf []byte, j int, c int32) {
	buf[4*j] = byte(c)
	buf[4*j+1] = byte(c >> 8)
	buf[4*j+2] = byte(c >> 16)
	buf[4*j+3] = byte(c >> 24)
}

// Root serves the zero-generalization frequency set for a QI subset: the
// exact view if materialized, an exact margin of a materialized superset,
// or nil (meaning: scan).
func (m *MaterializedSet) Root(dims []int) *relation.FreqSet {
	if v, ok := m.byKey[dimsKey(dims)]; ok {
		return v.f
	}
	if super := m.lookupSuperset(dims); super != nil {
		return marginTo(super, dims)
	}
	return nil
}

// lookupSuperset returns the materialized view over the smallest strict
// superset of dims (smallest by frequency-set size), or nil.
func (m *MaterializedSet) lookupSuperset(dims []int) *matView {
	var best *matView
	for _, v := range m.views {
		if len(v.dims) <= len(dims) {
			continue
		}
		if isSubset(dims, v.dims) && (best == nil || v.f.Len() < best.f.Len()) {
			best = v
		}
	}
	return best
}

// marginTo margins a view's zero-generalization frequency set down to the
// QI subset dims ⊆ view.dims by summing out the other positions.
func marginTo(v *matView, dims []int) *relation.FreqSet {
	outDims := append([]int(nil), v.dims...)
	f := v.f
	for i := len(outDims) - 1; i >= 0; i-- {
		keep := false
		for _, d := range dims {
			if outDims[i] == d {
				keep = true
			}
		}
		if !keep {
			f = f.DropColumn(i)
			outDims = append(outDims[:i], outDims[i+1:]...)
		}
	}
	return f
}

func dimsOfMask(mask, n int) []int {
	var dims []int
	for d := 0; d < n; d++ {
		if mask&(1<<d) != 0 {
			dims = append(dims, d)
		}
	}
	return dims
}

func isSubset(sub, super []int) bool {
	j := 0
	for _, s := range sub {
		for j < len(super) && super[j] < s {
			j++
		}
		if j >= len(super) || super[j] != s {
			return false
		}
		j++
	}
	return true
}

// NumViews reports how many views were materialized.
func (m *MaterializedSet) NumViews() int { return len(m.views) }

// ViewDims lists the materialized subsets (QI positions), largest first.
func (m *MaterializedSet) ViewDims() [][]int {
	out := make([][]int, len(m.views))
	for i, v := range m.views {
		out[i] = append([]int(nil), v.dims...)
	}
	return out
}

// RunMaterialized executes Incognito against a strategically materialized
// partial cube: roots whose subset is covered by a materialized view are
// served by an exact margin plus rollup; everything else scans, exactly
// like Basic. The solution set is identical to every other variant — only
// the scan/rollup mix changes, which is the point of the optimization.
func RunMaterialized(in Input, mat *MaterializedSet) (res *Result, err error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	in.installAbort()
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, resilience.AsPanicError("run", r)
		}
	}()
	// The maker serves roots from the (read-only) materialized set; each
	// search component writes its counters to its own Stats, so the family
	// searches can run in parallel.
	maker := func(_ []*lattice.Node, stats *Stats) func(*lattice.Node) *relation.FreqSet {
		return func(nd *lattice.Node) *relation.FreqSet {
			if zero := mat.Root(nd.Dims); zero != nil {
				stats.Rollups++
				zeros := make([]int, len(nd.Dims))
				return in.RollupTo(zero, nd.Dims, zeros, nd.Levels)
			}
			stats.TableScans++
			return in.ScanFreq(nd.Dims, nd.Levels)
		}
	}
	return runSearch(&in, maker, "Materialized Incognito")
}
