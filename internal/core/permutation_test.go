package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestSolutionsInvariantUnderQIPermutation: reordering the quasi-identifier
// attributes must permute each solution's level vector correspondingly and
// change nothing else — full-domain generalization has no attribute-order
// semantics, so any dependence would be a search bug (e.g. in the Apriori
// dimension ordering, which exists only to avoid duplicate candidates).
func TestSolutionsInvariantUnderQIPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(3)
		in := randomInstance(rng, n, int64(1+rng.Intn(3)), int64(rng.Intn(3)))
		base, err := Run(in, Basic)
		if err != nil {
			t.Fatal(err)
		}

		perm := rng.Perm(n)
		permuted := in
		permuted.QI = make([]QIAttr, n)
		for i, p := range perm {
			permuted.QI[i] = in.QI[p]
		}
		permRes, err := Run(permuted, Basic)
		if err != nil {
			t.Fatal(err)
		}

		// Map the permuted solutions back into the original attribute order.
		back := make([][]int, len(permRes.Solutions))
		for si, s := range permRes.Solutions {
			orig := make([]int, n)
			for i, p := range perm {
				orig[p] = s[i]
			}
			back[si] = orig
		}
		SortSolutions(back)
		if !reflect.DeepEqual(back, base.Solutions) {
			t.Fatalf("trial %d: permutation %v changed the solution set\ngot  %v\nwant %v",
				trial, perm, back, base.Solutions)
		}
	}
}

// TestComposeSteps: the composed γ⁺ table must agree with the hierarchy's
// direct base-to-level maps on every value.
func TestComposeSteps(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	in := randomInstance(rng, 2, 2, 0)
	for dim, q := range in.QI {
		h := q.H
		for from := 0; from < h.Height(); from++ {
			for to := from + 1; to <= h.Height(); to++ {
				composed := in.composeSteps(dim, from, to)
				for b := 0; b < h.LevelSize(0); b++ {
					var atFrom int32 = int32(b)
					if m := h.MapTo(from); m != nil {
						atFrom = m[b]
					}
					var atTo int32 = int32(b)
					if m := h.MapTo(to); m != nil {
						atTo = m[b]
					}
					if composed[atFrom] != atTo {
						t.Fatalf("dim %d: composeSteps(%d→%d) maps %d to %d, want %d",
							dim, from, to, atFrom, composed[atFrom], atTo)
					}
				}
			}
		}
		if in.composeSteps(dim, 1, 1) != nil {
			t.Fatal("composeSteps of an empty range should be nil (identity)")
		}
	}
}

// TestRollupToPanicsOnNonGeneralization documents the contract violation.
func TestRollupToPanicsOnNonGeneralization(t *testing.T) {
	in := patientsInput(2, 0)
	f := in.ScanFreq([]int{2}, []int{1})
	defer func() {
		if recover() == nil {
			t.Fatal("RollupTo from level 1 to level 0 did not panic")
		}
	}()
	in.RollupTo(f, []int{2}, []int{1}, []int{0})
}
