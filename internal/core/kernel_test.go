package core

import (
	"fmt"
	"reflect"
	"testing"
)

// TestKernelSanity checks the SparseKernel knob actually selects the
// representation: by default the generalized domain sizes are threaded from
// the hierarchies and the frequency set comes back dense; with the knob set
// the same scan stays on the sparse map.
func TestKernelSanity(t *testing.T) {
	in := determinismInputs(t)[0]
	dims := make([]int, len(in.QI))
	levels := make([]int, len(in.QI))
	for i := range dims {
		dims[i] = i
	}
	if f := in.ScanFreq(dims, levels); !f.Dense() {
		t.Fatal("adaptive kernel should scan the paper's example densely")
	}
	in.SparseKernel = true
	if f := in.ScanFreq(dims, levels); f.Dense() {
		t.Fatal("SparseKernel did not force the sparse representation")
	}
}

// TestKernelEquivalenceAcrossParallelism is the dense kernel's acceptance
// contract: for every algorithm variant, every workload, and every
// parallelism level, the adaptive (dense-capable) kernel must produce
// Solutions AND Stats bit-identical to the sparse reference kernel.
func TestKernelEquivalenceAcrossParallelism(t *testing.T) {
	variants := []Variant{Basic, SuperRoots, Cube}
	for di, ref := range determinismInputs(t) {
		for _, v := range variants {
			v := v
			in := ref
			t.Run(fmt.Sprintf("input=%d/%v", di, v), func(t *testing.T) {
				in.Parallelism = 1
				in.SparseKernel = true
				want, err := Run(in, v)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range parallelismLevels() {
					for _, sparse := range []bool{false, true} {
						in.Parallelism = p
						in.SparseKernel = sparse
						got, err := Run(in, v)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Solutions, want.Solutions) {
							t.Fatalf("kernel sparse=%v parallelism=%d changed solutions:\ngot  %v\nwant %v",
								sparse, p, got.Solutions, want.Solutions)
						}
						if got.Stats != want.Stats {
							t.Fatalf("kernel sparse=%v parallelism=%d changed stats:\ngot  %+v\nwant %+v",
								sparse, p, got.Stats, want.Stats)
						}
					}
				}
			})
		}
	}
}
