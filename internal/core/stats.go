package core

import "incognito/internal/trace"

// Stats instruments a run with the counters the paper reports: how many
// generalization nodes had their k-anonymity checked explicitly (the
// §4.2.1 "nodes searched" table), how often the base table was scanned
// versus how often a frequency set was derived by rollup, and how much
// candidate generation the a priori pruning left behind.
type Stats struct {
	// NodesChecked counts nodes whose frequency set was computed and whose
	// k-anonymity was tested explicitly (roots and failure frontiers).
	NodesChecked int
	// NodesMarked counts nodes skipped because the generalization property
	// had already marked them k-anonymous.
	NodesMarked int
	// Candidates counts candidate nodes across all iterations (|C1|+…+|Cn|).
	Candidates int
	// TableScans counts full scans of the base table (frequency sets built
	// from T itself).
	TableScans int
	// Rollups counts frequency sets derived from another frequency set.
	Rollups int
	// CubeFreqSets counts zero-generalization frequency sets materialized by
	// Cube Incognito's pre-computation phase.
	CubeFreqSets int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.NodesChecked += other.NodesChecked
	s.NodesMarked += other.NodesMarked
	s.Candidates += other.Candidates
	s.TableScans += other.TableScans
	s.Rollups += other.Rollups
	s.CubeFreqSets += other.CubeFreqSets
}

// Sub returns s - other, the per-phase delta recorded on trace spans.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		NodesChecked: s.NodesChecked - other.NodesChecked,
		NodesMarked:  s.NodesMarked - other.NodesMarked,
		Candidates:   s.Candidates - other.Candidates,
		TableScans:   s.TableScans - other.TableScans,
		Rollups:      s.Rollups - other.Rollups,
		CubeFreqSets: s.CubeFreqSets - other.CubeFreqSets,
	}
}

// Trace counter names. Each unit of work is recorded on exactly one span,
// so summing a counter over a whole trace document reproduces the matching
// Stats total (the invariant the determinism tests assert).
const (
	CounterNodesChecked = "nodes_checked"
	CounterNodesMarked  = "nodes_marked"
	CounterCandidates   = "candidates"
	CounterTableScans   = "table_scans"
	CounterRollups      = "rollups"
	CounterCubeFreqSets = "cube_freq_sets"
)

// RecordStatsDelta records after − before on sp, for algorithm drivers in
// other packages (the baselines) that instrument phases by snapshotting
// their Stats around each phase. No-op on a nil span.
func RecordStatsDelta(sp *trace.Span, before, after Stats) {
	after.Sub(before).recordOn(sp)
}

// recordOn adds the Stats counters to a span (no-op on a nil span, and
// zero-valued counters are skipped).
func (s Stats) recordOn(sp *trace.Span) {
	sp.Add(CounterNodesChecked, int64(s.NodesChecked))
	sp.Add(CounterNodesMarked, int64(s.NodesMarked))
	sp.Add(CounterCandidates, int64(s.Candidates))
	sp.Add(CounterTableScans, int64(s.TableScans))
	sp.Add(CounterRollups, int64(s.Rollups))
	sp.Add(CounterCubeFreqSets, int64(s.CubeFreqSets))
}
