package core

// Stats instruments a run with the counters the paper reports: how many
// generalization nodes had their k-anonymity checked explicitly (the
// §4.2.1 "nodes searched" table), how often the base table was scanned
// versus how often a frequency set was derived by rollup, and how much
// candidate generation the a priori pruning left behind.
type Stats struct {
	// NodesChecked counts nodes whose frequency set was computed and whose
	// k-anonymity was tested explicitly (roots and failure frontiers).
	NodesChecked int
	// NodesMarked counts nodes skipped because the generalization property
	// had already marked them k-anonymous.
	NodesMarked int
	// Candidates counts candidate nodes across all iterations (|C1|+…+|Cn|).
	Candidates int
	// TableScans counts full scans of the base table (frequency sets built
	// from T itself).
	TableScans int
	// Rollups counts frequency sets derived from another frequency set.
	Rollups int
	// CubeFreqSets counts zero-generalization frequency sets materialized by
	// Cube Incognito's pre-computation phase.
	CubeFreqSets int
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.NodesChecked += other.NodesChecked
	s.NodesMarked += other.NodesMarked
	s.Candidates += other.Candidates
	s.TableScans += other.TableScans
	s.Rollups += other.Rollups
	s.CubeFreqSets += other.CubeFreqSets
}
