package core

import (
	"fmt"
	"reflect"
	"runtime"
	"testing"

	"incognito/internal/dataset"
)

// parallelismLevels are the worker counts every determinism test sweeps:
// the sequential reference, a fixed small parallel setting, and whatever
// the machine offers.
func parallelismLevels() []int {
	levels := []int{1, 2}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 {
		levels = append(levels, p)
	}
	return levels
}

// determinismInputs are the (dataset, k) workloads of the determinism
// suite: the paper's running example and a sampled Adults instance big
// enough to shard scans and to populate multi-family candidate graphs.
func determinismInputs(tb testing.TB) []Input {
	tb.Helper()
	var ins []Input
	p := dataset.Patients()
	ins = append(ins, NewInput(p.Table, p.QICols, p.Hierarchies, 2, 0))
	a := dataset.Adults(900, 1)
	cols, hs, err := a.QISubset(5)
	if err != nil {
		tb.Fatal(err)
	}
	ins = append(ins, NewInput(a.Table, cols, hs, 5, 0))
	return ins
}

// TestDeterminismAcrossParallelism is the tentpole's contract: every
// algorithm variant must produce byte-identical Solutions AND Stats at
// parallelism 1 (the sequential reference), 2, and GOMAXPROCS. Run under
// -race this also proves the family decomposition and sharded scans are
// data-race free.
func TestDeterminismAcrossParallelism(t *testing.T) {
	variants := []Variant{Basic, SuperRoots, Cube}
	for di, ref := range determinismInputs(t) {
		for _, v := range variants {
			v := v
			in := ref
			t.Run(fmt.Sprintf("input=%d/%v", di, v), func(t *testing.T) {
				in.Parallelism = 1
				want, err := Run(in, v)
				if err != nil {
					t.Fatal(err)
				}
				for _, p := range parallelismLevels()[1:] {
					in.Parallelism = p
					got, err := Run(in, v)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Solutions, want.Solutions) {
						t.Fatalf("parallelism %d changed solutions:\ngot  %v\nwant %v", p, got.Solutions, want.Solutions)
					}
					if got.Stats != want.Stats {
						t.Fatalf("parallelism %d changed stats:\ngot  %+v\nwant %+v", p, got.Stats, want.Stats)
					}
				}
			})
		}
		// Materialized Incognito: the partial cube build and the search must
		// both be deterministic, including the scan/rollup mix in BuildStats.
		in := ref
		t.Run(fmt.Sprintf("input=%d/Materialized", di), func(t *testing.T) {
			const budget = 1 << 14
			in.Parallelism = 1
			refMat := MaterializeBudget(&in, budget)
			want, err := RunMaterialized(in, refMat)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range parallelismLevels()[1:] {
				in.Parallelism = p
				mat := MaterializeBudget(&in, budget)
				if mat.BuildStats != refMat.BuildStats {
					t.Fatalf("parallelism %d changed materialization stats:\ngot  %+v\nwant %+v", p, mat.BuildStats, refMat.BuildStats)
				}
				if !reflect.DeepEqual(mat.ViewDims(), refMat.ViewDims()) {
					t.Fatalf("parallelism %d changed the selected views:\ngot  %v\nwant %v", p, mat.ViewDims(), refMat.ViewDims())
				}
				got, err := RunMaterialized(in, mat)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Solutions, want.Solutions) {
					t.Fatalf("parallelism %d changed solutions:\ngot  %v\nwant %v", p, got.Solutions, want.Solutions)
				}
				if got.Stats != want.Stats {
					t.Fatalf("parallelism %d changed stats:\ngot  %+v\nwant %+v", p, got.Stats, want.Stats)
				}
			}
		})
	}
}

// TestCubeBuildDeterministicAcrossParallelism checks the wave-parallel
// cube pre-computation in isolation: identical BuildStats and identical
// margins at every worker count.
func TestCubeBuildDeterministicAcrossParallelism(t *testing.T) {
	for _, in := range determinismInputs(t) {
		in.Parallelism = 1
		want := BuildCube(&in)
		fullDims := make([]int, len(in.QI))
		for i := range fullDims {
			fullDims[i] = i
		}
		for _, p := range parallelismLevels()[1:] {
			in.Parallelism = p
			got := BuildCube(&in)
			if got.BuildStats != want.BuildStats {
				t.Fatalf("parallelism %d changed cube build stats: %+v vs %+v", p, got.BuildStats, want.BuildStats)
			}
			if got.NumSets() != want.NumSets() {
				t.Fatalf("parallelism %d changed cube set count: %d vs %d", p, got.NumSets(), want.NumSets())
			}
			// Spot-check that each subset's margin has the same shape.
			for d := 0; d < len(in.QI); d++ {
				g, w := got.Get([]int{d}), want.Get([]int{d})
				if g.Len() != w.Len() || g.Total() != w.Total() {
					t.Fatalf("parallelism %d changed the margin for dim %d", p, d)
				}
			}
			if got.Get(fullDims).Len() != want.Get(fullDims).Len() {
				t.Fatalf("parallelism %d changed the full-QI frequency set", p)
			}
		}
	}
}

// TestWorkersKnob pins the Parallelism → worker-count mapping.
func TestWorkersKnob(t *testing.T) {
	for _, tc := range []struct{ parallelism, want int }{
		{0, runtime.GOMAXPROCS(0)},
		{1, 1},
		{-3, 1},
		{5, 5},
	} {
		in := Input{Parallelism: tc.parallelism}
		if got := in.Workers(); got != tc.want {
			t.Errorf("Workers() with Parallelism=%d = %d, want %d", tc.parallelism, got, tc.want)
		}
	}
}

// TestRunIndexedCoversAllIndices checks the worker-pool primitive visits
// every index exactly once at any worker count.
func TestRunIndexedCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		const n = 57
		counts := make([]int32, n)
		runIndexed(workers, n, func(i int) { counts[i]++ })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}
