package core

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"incognito/internal/dataset"
	"incognito/internal/telemetry"
)

// parallelismLevels are the worker counts every determinism test sweeps:
// the sequential reference, two fixed parallel settings (2 and 4 — more
// workers than a small phase has tasks, exercising the clamp), and
// whatever the machine offers.
func parallelismLevels() []int {
	levels := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p != 1 && p != 2 && p != 4 {
		levels = append(levels, p)
	}
	return levels
}

// determinismInputs are the (dataset, k) workloads of the determinism
// suite: the paper's running example and a sampled Adults instance big
// enough to shard scans and to populate multi-family candidate graphs.
func determinismInputs(tb testing.TB) []Input {
	tb.Helper()
	var ins []Input
	p := dataset.Patients()
	ins = append(ins, NewInput(p.Table, p.QICols, p.Hierarchies, 2, 0))
	a := dataset.Adults(900, 1)
	cols, hs, err := a.QISubset(5)
	if err != nil {
		tb.Fatal(err)
	}
	ins = append(ins, NewInput(a.Table, cols, hs, 5, 0))
	return ins
}

// TestDeterminismAcrossParallelism is the tentpole's contract: every
// algorithm variant, on both frequency-set kernels, must produce
// byte-identical Solutions AND Stats at parallelism 1 (the sequential
// reference), 2, 4, and GOMAXPROCS. Run under -race this also proves the
// work-stealing family decomposition, the cube's dependency-graph
// scheduling, and the chunked scans are data-race free.
func TestDeterminismAcrossParallelism(t *testing.T) {
	variants := []Variant{Basic, SuperRoots, Cube}
	for di, ref := range determinismInputs(t) {
		for _, v := range variants {
			for _, sparse := range []bool{false, true} {
				v, sparse := v, sparse
				in := ref
				t.Run(fmt.Sprintf("input=%d/%v/sparse=%v", di, v, sparse), func(t *testing.T) {
					in.SparseKernel = sparse
					in.Parallelism = 1
					want, err := Run(in, v)
					if err != nil {
						t.Fatal(err)
					}
					for _, p := range parallelismLevels()[1:] {
						in.Parallelism = p
						got, err := Run(in, v)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Solutions, want.Solutions) {
							t.Fatalf("parallelism %d changed solutions:\ngot  %v\nwant %v", p, got.Solutions, want.Solutions)
						}
						if got.Stats != want.Stats {
							t.Fatalf("parallelism %d changed stats:\ngot  %+v\nwant %+v", p, got.Stats, want.Stats)
						}
					}
				})
			}
		}
		// Materialized Incognito: the partial cube build and the search must
		// both be deterministic, including the scan/rollup mix in BuildStats.
		in := ref
		t.Run(fmt.Sprintf("input=%d/Materialized", di), func(t *testing.T) {
			const budget = 1 << 14
			in.Parallelism = 1
			refMat := MaterializeBudget(&in, budget)
			want, err := RunMaterialized(in, refMat)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range parallelismLevels()[1:] {
				in.Parallelism = p
				mat := MaterializeBudget(&in, budget)
				if mat.BuildStats != refMat.BuildStats {
					t.Fatalf("parallelism %d changed materialization stats:\ngot  %+v\nwant %+v", p, mat.BuildStats, refMat.BuildStats)
				}
				if !reflect.DeepEqual(mat.ViewDims(), refMat.ViewDims()) {
					t.Fatalf("parallelism %d changed the selected views:\ngot  %v\nwant %v", p, mat.ViewDims(), refMat.ViewDims())
				}
				got, err := RunMaterialized(in, mat)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got.Solutions, want.Solutions) {
					t.Fatalf("parallelism %d changed solutions:\ngot  %v\nwant %v", p, got.Solutions, want.Solutions)
				}
				if got.Stats != want.Stats {
					t.Fatalf("parallelism %d changed stats:\ngot  %+v\nwant %+v", p, got.Stats, want.Stats)
				}
			}
		})
	}
}

// TestCubeBuildDeterministicAcrossParallelism checks the wave-parallel
// cube pre-computation in isolation: identical BuildStats and identical
// margins at every worker count.
func TestCubeBuildDeterministicAcrossParallelism(t *testing.T) {
	for _, in := range determinismInputs(t) {
		in.Parallelism = 1
		want := BuildCube(&in)
		fullDims := make([]int, len(in.QI))
		for i := range fullDims {
			fullDims[i] = i
		}
		for _, p := range parallelismLevels()[1:] {
			in.Parallelism = p
			got := BuildCube(&in)
			if got.BuildStats != want.BuildStats {
				t.Fatalf("parallelism %d changed cube build stats: %+v vs %+v", p, got.BuildStats, want.BuildStats)
			}
			if got.NumSets() != want.NumSets() {
				t.Fatalf("parallelism %d changed cube set count: %d vs %d", p, got.NumSets(), want.NumSets())
			}
			// Spot-check that each subset's margin has the same shape.
			for d := 0; d < len(in.QI); d++ {
				g, w := got.Get([]int{d}), want.Get([]int{d})
				if g.Len() != w.Len() || g.Total() != w.Total() {
					t.Fatalf("parallelism %d changed the margin for dim %d", p, d)
				}
			}
			if got.Get(fullDims).Len() != want.Get(fullDims).Len() {
				t.Fatalf("parallelism %d changed the full-QI frequency set", p)
			}
		}
	}
}

// TestWorkersKnob pins the Parallelism → worker-count mapping, including
// the task-count clamp of workersFor.
func TestWorkersKnob(t *testing.T) {
	for _, tc := range []struct{ parallelism, want int }{
		{0, runtime.GOMAXPROCS(0)},
		{1, 1},
		{-3, 1},
		{5, 5},
	} {
		in := Input{Parallelism: tc.parallelism}
		if got := in.Workers(); got != tc.want {
			t.Errorf("Workers() with Parallelism=%d = %d, want %d", tc.parallelism, got, tc.want)
		}
	}
	for _, tc := range []struct{ parallelism, tasks, want int }{
		{8, 3, 3},  // fewer tasks than workers: clamp
		{8, 0, 1},  // degenerate phase still has a calling goroutine
		{2, 16, 2}, // more tasks than workers: knob wins
		{0, 1, 1},  // GOMAXPROCS-many workers, one task
	} {
		in := Input{Parallelism: tc.parallelism}
		if got := in.workersFor(tc.tasks); got != tc.want {
			t.Errorf("workersFor(%d) with Parallelism=%d = %d, want %d", tc.tasks, tc.parallelism, got, tc.want)
		}
	}
}

// TestRunIndexedSafeCoversAllIndices checks the scheduler-backed phase
// primitive visits every index exactly once at any worker count.
func TestRunIndexedSafeCoversAllIndices(t *testing.T) {
	in := &Input{}
	in.installAbort()
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		const n = 57
		counts := make([]int32, n)
		var mu sync.Mutex
		err := runIndexedSafe(in, workers, n, func(i int) string { return "t" }, func(i int) {
			mu.Lock()
			counts[i]++
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestClampedDispatchStaysInline pins the satellite fix: dispatching a
// single task at a many-worker setting must not spawn idle goroutines —
// it must take the same inline path (and therefore the same allocation
// profile) as a one-worker dispatch. A goroutine pool would show up as
// extra allocations per run.
func TestClampedDispatchStaysInline(t *testing.T) {
	in := &Input{Parallelism: 8}
	in.installAbort()
	site := func(i int) string { return "t" }
	fn := func(i int) {}
	measure := func(workers int) float64 {
		return testing.AllocsPerRun(200, func() {
			if err := runIndexedSafe(in, workers, 1, site, fn); err != nil {
				t.Fatal(err)
			}
		})
	}
	inline, clamped := measure(1), measure(in.workersFor(1))
	if clamped != inline {
		t.Fatalf("clamped single-task dispatch allocates %.1f/run, inline path allocates %.1f/run — idle workers were spawned", clamped, inline)
	}
	before := runtime.NumGoroutine()
	if err := runIndexedSafe(in, in.workersFor(1), 1, site, fn); err != nil {
		t.Fatal(err)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("single-task dispatch left %d goroutines (had %d)", after, before)
	}
}

// TestNoGoroutineLeakAfterCancellation cancels runs at many points —
// including mid-phase, while workers are stealing — and checks every
// scheduler goroutine has exited afterwards. The scheduler only returns
// from a phase when all its workers have, so cancellation (which drains
// tasks through Err checks) must leave no goroutine behind.
func TestNoGoroutineLeakAfterCancellation(t *testing.T) {
	in := determinismInputs(t)[1]
	in.Parallelism = 4
	before := runtime.NumGoroutine()
	for _, v := range []Variant{Basic, SuperRoots, Cube} {
		for n := 0; n < 60; n += 5 {
			cin := in
			cin.Ctx = newCountdown(n)
			if _, err := Run(cin, v); err == nil {
				break // countdown outlived the run: later counts only get longer
			}
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Fatalf("%d goroutines before cancellation runs, %d after — leak", before, after)
	}
}

// TestStealRebalancesFamilies drives a multi-family graph through the
// scheduler with telemetry on and checks the scheduler metrics see the
// phases: tasks executed, and (at worker counts below the family count)
// a non-zero chance of steals having occurred is not asserted — stealing
// is schedule-dependent — but the dispatch accounting must balance.
func TestStealRebalancesFamilies(t *testing.T) {
	reg := telemetry.NewRegistry()
	in := determinismInputs(t)[1]
	in.Parallelism = 3
	in.Metrics = reg.NewRunMetrics()
	if _, err := Run(in, Basic); err != nil {
		t.Fatal(err)
	}
	m := in.Metrics.Sched()
	if m.Tasks() == 0 {
		t.Fatal("scheduler metrics recorded no tasks for a parallel Basic run")
	}
	if m.ParallelPhases() == 0 {
		t.Fatal("no parallel phase recorded at parallelism 3 on a 900-row input")
	}
	if u := m.Utilization(); u <= 0 || u > 1 {
		t.Fatalf("worker utilization %v outside (0, 1]", u)
	}
}

// BenchmarkDispatchFloor measures the trade parallelFloorRows encodes:
// the per-task work of a base-table scan at each table size, run as eight
// tasks either inline on the calling goroutine or dispatched to four
// scheduler workers. The inline/dispatch gap is the scheduling overhead;
// the floor sits where task cost dwarfs it. (On a single-core machine
// dispatch can only lose — the floor is calibrated from the per-task cost
// column, which is machine-portable, not from the speedup.)
func BenchmarkDispatchFloor(b *testing.B) {
	for _, rows := range []int{64, 512, 4096} {
		a := dataset.Adults(rows, 1)
		cols, hs, err := a.QISubset(3)
		if err != nil {
			b.Fatal(err)
		}
		in := NewInput(a.Table, cols, hs, 2, 0)
		in.installAbort()
		dims, levels := []int{0, 1, 2}, []int{1, 1, 1}
		const tasks = 8
		for _, mode := range []struct {
			name    string
			workers int
		}{{"inline", 1}, {"dispatch", 4}} {
			b.Run(fmt.Sprintf("rows=%d/%s", rows, mode.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					err := runIndexedSafe(&in, mode.workers, tasks, func(int) string { return "t" }, func(int) {
						in.ScanFreqRange(dims, levels, 0, rows)
					})
					if err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestDispatchFloorInline pins the task-size floor: a Patients-sized
// input (6 rows) must never dispatch worker goroutines however high the
// parallelism knob, and the results must match the sequential reference.
func TestDispatchFloorInline(t *testing.T) {
	reg := telemetry.NewRegistry()
	p := dataset.Patients()
	in := NewInput(p.Table, p.QICols, p.Hierarchies, 2, 0)
	in.Parallelism = 1
	want, err := Run(in, Cube)
	if err != nil {
		t.Fatal(err)
	}
	in.Parallelism = 16
	in.Metrics = reg.NewRunMetrics()
	got, err := Run(in, Cube)
	if err != nil {
		t.Fatal(err)
	}
	m := in.Metrics.Sched()
	if m.ParallelPhases() != 0 {
		t.Fatalf("%d parallel phases dispatched for a %d-row table below the %d-row floor",
			m.ParallelPhases(), p.Table.NumRows(), parallelFloorRows)
	}
	if m.InlinePhases() == 0 {
		t.Fatal("no inline phases recorded — floor path not taken")
	}
	if !reflect.DeepEqual(got.Solutions, want.Solutions) || got.Stats != want.Stats {
		t.Fatal("floored dispatch changed results")
	}
}
