package core

import (
	"testing"

	"incognito/internal/dataset"
)

// TestAdultsScaleAgreement runs the three variants plus the materialized
// extension on a mid-sized Adults instance (10k rows, 6-attribute QI) and
// checks they agree exactly — the oracle tests cover correctness on small
// random instances; this guards the realistic regime. Skipped with -short.
func TestAdultsScaleAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	d := dataset.Adults(10000, 3)
	cols, hs, err := d.QISubset(6)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInput(d.Table, cols, hs, 5, 0)

	basic, err := Run(in, Basic)
	if err != nil {
		t.Fatal(err)
	}
	if len(basic.Solutions) == 0 {
		t.Fatal("no solutions at k=5 on 10k rows; generator or search broken")
	}
	for _, v := range []Variant{SuperRoots, Cube} {
		res, err := Run(in, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Solutions) != len(basic.Solutions) {
			t.Fatalf("%v found %d solutions, basic %d", v, len(res.Solutions), len(basic.Solutions))
		}
	}
	mat := MaterializeBudget(&in, 1<<20)
	res, err := RunMaterialized(in, mat)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) != len(basic.Solutions) {
		t.Fatalf("materialized found %d solutions, basic %d", len(res.Solutions), len(basic.Solutions))
	}

	// Applying the minimal solution yields a verifiably k-anonymous view of
	// the full row count (no suppression configured).
	view, err := in.Apply(basic.Solutions[0])
	if err != nil {
		t.Fatal(err)
	}
	if view.NumRows() != d.Table.NumRows() {
		t.Fatalf("view rows = %d, want %d", view.NumRows(), d.Table.NumRows())
	}
}

// TestLandsEndScaleSmoke exercises the high-cardinality regime (31,953
// zipcode pool) end to end. Skipped with -short.
func TestLandsEndScaleSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in -short mode")
	}
	d := dataset.LandsEnd(20000, 3)
	cols, hs, err := d.QISubset(4)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInput(d.Table, cols, hs, 10, 50)
	res, err := Run(in, SuperRoots)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) == 0 {
		t.Fatal("no solutions with a 50-tuple suppression threshold")
	}
	view, err := in.Apply(res.Solutions[0])
	if err != nil {
		t.Fatal(err)
	}
	if d.Table.NumRows()-view.NumRows() > 50 {
		t.Fatalf("suppressed %d tuples, threshold 50", d.Table.NumRows()-view.NumRows())
	}
}
