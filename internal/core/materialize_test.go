package core

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestMaterializedMatchesBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 25; trial++ {
		in := randomInstance(rng, 1+rng.Intn(4), int64(1+rng.Intn(4)), 0)
		want, err := Run(in, Basic)
		if err != nil {
			t.Fatal(err)
		}
		for _, budget := range []int64{0, 10, 1000, 1 << 40} {
			mat := MaterializeBudget(&in, budget)
			got, err := RunMaterialized(in, mat)
			if err != nil {
				t.Fatalf("trial %d budget %d: %v", trial, budget, err)
			}
			if !reflect.DeepEqual(got.Solutions, want.Solutions) {
				t.Fatalf("trial %d budget %d: solutions differ\ngot  %v\nwant %v",
					trial, budget, got.Solutions, want.Solutions)
			}
		}
	}
}

func TestMaterializeBudgetZeroDegeneratesToBasic(t *testing.T) {
	in := patientsInput(2, 0)
	mat := MaterializeBudget(&in, 0)
	if mat.NumViews() != 0 {
		t.Fatalf("budget 0 materialized %d views", mat.NumViews())
	}
	res, err := RunMaterialized(in, mat)
	if err != nil {
		t.Fatal(err)
	}
	basic, err := Run(in, Basic)
	if err != nil {
		t.Fatal(err)
	}
	// With nothing materialized, every root scans — same as Basic.
	if res.Stats.TableScans != basic.Stats.TableScans {
		t.Fatalf("scans: materialized(0) %d, basic %d", res.Stats.TableScans, basic.Stats.TableScans)
	}
}

func TestMaterializeUnboundedCoversAllRoots(t *testing.T) {
	in := patientsInput(2, 0)
	mat := MaterializeBudget(&in, 1<<40)
	if mat.NumViews() == 0 {
		t.Fatal("unbounded budget materialized nothing")
	}
	res, err := RunMaterialized(in, mat)
	if err != nil {
		t.Fatal(err)
	}
	// The full-QI view answers every subset by margining: no search scans.
	if res.Stats.TableScans != 0 {
		t.Fatalf("search still scanned %d times under an unbounded budget", res.Stats.TableScans)
	}
	if mat.BuildStats.TableScans == 0 {
		t.Fatal("build phase must have scanned at least once")
	}
}

func TestMaterializeScansMonotoneInBudget(t *testing.T) {
	d := patientsInput(2, 0)
	prevScans := -1
	for _, budget := range []int64{0, 5, 50, 1 << 40} {
		mat := MaterializeBudget(&d, budget)
		res, err := RunMaterialized(d, mat)
		if err != nil {
			t.Fatal(err)
		}
		if prevScans >= 0 && res.Stats.TableScans > prevScans {
			t.Fatalf("budget %d increased search scans: %d > %d", budget, res.Stats.TableScans, prevScans)
		}
		prevScans = res.Stats.TableScans
	}
}

func TestMaterializedRootMargins(t *testing.T) {
	in := patientsInput(2, 0)
	mat := MaterializeBudget(&in, 1<<40)
	// Every subset's Root must equal a direct scan at zero generalization.
	var rec func(dims []int, start int)
	rec = func(dims []int, start int) {
		if len(dims) > 0 {
			got := mat.Root(dims)
			if got == nil {
				t.Fatalf("no materialized answer for %v under unbounded budget", dims)
			}
			want := in.ScanFreq(dims, make([]int, len(dims)))
			if got.Len() != want.Len() || got.Total() != want.Total() {
				t.Fatalf("margin for %v differs from scan: %d/%d groups, %d/%d total",
					dims, got.Len(), want.Len(), got.Total(), want.Total())
			}
			want.Each(func(codes []int32, count int64) {
				if got.Count(codes) != count {
					t.Fatalf("margin for %v: group %v = %d, want %d", dims, codes, got.Count(codes), count)
				}
			})
		}
		for d := start; d < len(in.QI); d++ {
			rec(append(dims, d), d+1)
		}
	}
	rec(nil, 0)
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		sub, super []int
		want       bool
	}{
		{[]int{}, []int{1, 2}, true},
		{[]int{1}, []int{1, 2}, true},
		{[]int{2}, []int{1, 2}, true},
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{3}, []int{1, 2}, false},
		{[]int{1, 3}, []int{1, 2}, false},
		{[]int{1, 1}, []int{1, 2}, false}, // repeated elements cannot both match
	}
	for _, c := range cases {
		if got := isSubset(c.sub, c.super); got != c.want {
			t.Fatalf("isSubset(%v, %v) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestViewDims(t *testing.T) {
	in := patientsInput(2, 0)
	mat := MaterializeBudget(&in, 1<<40)
	dims := mat.ViewDims()
	if len(dims) != mat.NumViews() {
		t.Fatalf("ViewDims returned %d entries for %d views", len(dims), mat.NumViews())
	}
	for _, d := range dims {
		for i := 1; i < len(d); i++ {
			if d[i-1] >= d[i] {
				t.Fatalf("view dims not sorted: %v", d)
			}
		}
	}
}
