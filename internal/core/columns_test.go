package core

import (
	"reflect"
	"testing"

	"incognito/internal/hierarchy"
	"incognito/internal/relation"
)

// TestQIOverReorderedColumns exercises the mapping between QI positions and
// table columns: the quasi-identifier lists Zipcode before Sex, both
// positioned after non-QI columns, and results must match the canonical
// Patients run modulo the attribute reordering.
func TestQIOverReorderedColumns(t *testing.T) {
	// Columns: Disease (non-QI), Zipcode, Note (non-QI), Sex, Birthdate.
	tab, err := relation.FromRows(
		[]string{"Disease", "Zipcode", "Note", "Sex", "Birthdate"},
		[][]string{
			{"Flu", "53715", "n1", "Male", "1/21/76"},
			{"Hepatitis", "53715", "n2", "Female", "4/13/86"},
			{"Brochitis", "53703", "n3", "Male", "2/28/76"},
			{"Broken Arm", "53703", "n4", "Male", "1/21/76"},
			{"Sprained Ankle", "53706", "n5", "Female", "4/13/86"},
			{"Hang Nail", "53706", "n6", "Female", "2/28/76"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	zipCol, sexCol, bdCol := 1, 3, 4
	zh, err := hierarchy.RoundDigitsSpec("Z", 2).Bind(tab.Dict(zipCol))
	if err != nil {
		t.Fatal(err)
	}
	sh, err := hierarchy.Taxonomy("S", map[string]string{"Male": "Person", "Female": "Person"}).Bind(tab.Dict(sexCol))
	if err != nil {
		t.Fatal(err)
	}
	bh, err := hierarchy.SuppressionSpec("B").Bind(tab.Dict(bdCol))
	if err != nil {
		t.Fatal(err)
	}
	// QI order: Zipcode, Sex, Birthdate (a permutation of the canonical
	// Birthdate, Sex, Zipcode).
	in := NewInput(tab, []int{zipCol, sexCol, bdCol},
		[]*hierarchy.Hierarchy{zh, sh, bh}, 2, 0)
	res, err := Run(in, Basic)
	if err != nil {
		t.Fatal(err)
	}
	// Canonical solutions (B,S,Z): {1,1,0},{0,1,2},{1,0,2},{1,1,1},{1,1,2}.
	// In (Z,S,B) order that is {0,1,1},{2,1,0},{2,0,1},{1,1,1},{2,1,1}.
	want := [][]int{
		{0, 1, 1},
		{2, 0, 1},
		{1, 1, 1},
		{2, 1, 0},
		{2, 1, 1},
	}
	SortSolutions(want)
	if !reflect.DeepEqual(res.Solutions, want) {
		t.Fatalf("solutions = %v, want %v", res.Solutions, want)
	}

	// Apply must generalize the right columns and pass the others through.
	view, err := in.Apply([]int{0, 1, 1}) // Zip intact, Sex→Person, Birthdate→*
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < view.NumRows(); r++ {
		if view.Value(r, 3) != "Person" || view.Value(r, 4) != "*" {
			t.Fatalf("row %d QI not generalized: %v", r, view.Row(r))
		}
		if view.Value(r, 2) != tab.Value(r, 2) || view.Value(r, 0) != tab.Value(r, 0) {
			t.Fatalf("row %d non-QI columns changed: %v", r, view.Row(r))
		}
		if view.Value(r, 1) != tab.Value(r, 1) {
			t.Fatalf("row %d Zipcode (level 0) changed: %v", r, view.Row(r))
		}
	}
}

// TestAllVariantsOnReorderedColumns runs every variant on the permuted
// instance to catch column-mapping bugs in the per-variant root providers.
func TestAllVariantsOnReorderedColumns(t *testing.T) {
	tab, err := relation.FromRows(
		[]string{"Pad", "B", "A"},
		[][]string{
			{"x", "b1", "a1"}, {"y", "b1", "a1"},
			{"z", "b2", "a2"}, {"w", "b2", "a2"},
			{"v", "b2", "a1"}, {"u", "b1", "a2"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	ha, err := hierarchy.SuppressionSpec("A").Bind(tab.Dict(2))
	if err != nil {
		t.Fatal(err)
	}
	hb, err := hierarchy.SuppressionSpec("B").Bind(tab.Dict(1))
	if err != nil {
		t.Fatal(err)
	}
	in := NewInput(tab, []int{2, 1}, []*hierarchy.Hierarchy{ha, hb}, 2, 0)
	want := exhaustive(&in)
	for _, v := range []Variant{Basic, SuperRoots, Cube} {
		res, err := Run(in, v)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Solutions, want) {
			t.Fatalf("%v on reordered columns: %v, want %v", v, res.Solutions, want)
		}
	}
	mat := MaterializeBudget(&in, 1<<30)
	res, err := RunMaterialized(in, mat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Solutions, want) {
		t.Fatalf("materialized on reordered columns: %v, want %v", res.Solutions, want)
	}
}
