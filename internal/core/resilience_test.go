package core

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"incognito/internal/resilience"
)

// resilienceVariants are the checkpointable search configurations of the
// kill-and-resume sweep: each runs the algorithm end to end on its own copy
// of the input.
var resilienceVariants = []struct {
	name string
	run  func(in Input) (*Result, error)
}{
	{"Basic", func(in Input) (*Result, error) { return Run(in, Basic) }},
	{"SuperRoots", func(in Input) (*Result, error) { return Run(in, SuperRoots) }},
	{"Cube", func(in Input) (*Result, error) { return Run(in, Cube) }},
	{"Materialized", func(in Input) (*Result, error) {
		mat := MaterializeBudget(&in, 512)
		return RunMaterialized(in, mat)
	}},
}

// checkpointDir is where a kill-and-resume subtest writes its snapshots: a
// subdirectory of INCOGNITO_CKPT_DIR when set — kept on failure so CI can
// upload the exact checkpoint files of the failing boundary — and a test
// temp dir otherwise.
func checkpointDir(t *testing.T) string {
	t.Helper()
	root := os.Getenv("INCOGNITO_CKPT_DIR")
	if root == "" {
		return t.TempDir()
	}
	dir, err := os.MkdirTemp(root, "resume-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if !t.Failed() {
			os.RemoveAll(dir)
		}
	})
	return dir
}

// TestKillAndResumeBitIdentical is the tentpole's contract: a run killed at
// ANY checkpoint boundary — every subset-size iteration, every completed
// family, every breadth-first level — must resume from its snapshot to
// Solutions and Stats bit-identical to an uninterrupted run, across
// variants, parallelism levels, and kernels. The AfterSave hook cancels the
// run right after the b-th snapshot lands, for every b until the run
// outlives its checkpoints.
func TestKillAndResumeBitIdentical(t *testing.T) {
	type config struct {
		input    int
		parallel []int
		sparse   []bool
	}
	configs := []config{
		{0, parallelismLevels(), []bool{false, true}}, // Patients: full matrix
		{1, []int{1, parallelismLevels()[len(parallelismLevels())-1]}, []bool{false}},
	}
	inputs := determinismInputs(t)
	boundaries := make(map[string]bool)
	for _, cfg := range configs {
		base := inputs[cfg.input]
		for _, variant := range resilienceVariants {
			for _, p := range cfg.parallel {
				for _, sparse := range cfg.sparse {
					name := fmt.Sprintf("input=%d/%s/p=%d/sparse=%v", cfg.input, variant.name, p, sparse)
					t.Run(name, func(t *testing.T) {
						ref := base
						ref.Parallelism = p
						ref.SparseKernel = sparse
						want, err := variant.run(ref)
						if err != nil {
							t.Fatal(err)
						}

						dir := checkpointDir(t)
						completed := false
						const maxSaves = 300
						for b := 1; b <= maxSaves; b++ {
							path := filepath.Join(dir, fmt.Sprintf("kill-%d.ckpt", b))
							ck := resilience.NewCheckpointer(path)
							ctx, cancel := context.WithCancel(context.Background())
							saves := 0
							ck.AfterSave = func(*resilience.Snapshot) {
								saves++
								if saves == b {
									cancel()
								}
							}
							in := base
							in.Parallelism = p
							in.SparseKernel = sparse
							in.Ctx = ctx
							in.Check = ck
							res, err := variant.run(in)
							cancel()
							if err == nil {
								// The run outlived its checkpoints: the result must
								// be complete and the snapshot file cleared.
								if !reflect.DeepEqual(res.Solutions, want.Solutions) || res.Stats != want.Stats {
									t.Fatalf("kill=%d: uninterrupted checkpointed run differs from reference", b)
								}
								if _, serr := os.Stat(path); !os.IsNotExist(serr) {
									t.Fatalf("kill=%d: completed run left its checkpoint behind", b)
								}
								completed = true
								break
							}
							if !errors.Is(err, context.Canceled) {
								t.Fatalf("kill=%d: run failed with %v, want cancellation", b, err)
							}
							snap, lerr := resilience.Load(path)
							if lerr != nil {
								t.Fatalf("kill=%d: loading snapshot: %v", b, lerr)
							}
							boundaries[snap.Boundary] = true

							re := base
							re.Parallelism = p
							re.SparseKernel = sparse
							re.Resume = snap
							re.Check = resilience.NewCheckpointer(path)
							got, rerr := variant.run(re)
							if rerr != nil {
								t.Fatalf("kill=%d: resume from %s boundary failed: %v", b, snap.Boundary, rerr)
							}
							if !reflect.DeepEqual(got.Solutions, want.Solutions) {
								t.Fatalf("kill=%d (%s boundary): resumed solutions differ:\ngot  %v\nwant %v",
									b, snap.Boundary, got.Solutions, want.Solutions)
							}
							if got.Stats != want.Stats {
								t.Fatalf("kill=%d (%s boundary): resumed stats differ:\ngot  %+v\nwant %+v",
									b, snap.Boundary, got.Stats, want.Stats)
							}
							if _, serr := os.Stat(path); !os.IsNotExist(serr) {
								t.Fatalf("kill=%d: resumed run left its checkpoint behind", b)
							}
						}
						if !completed {
							t.Fatalf("run never outlived %d checkpoint kills", maxSaves)
						}
					})
				}
			}
		}
	}
	// The sweep must have exercised every snapshot boundary kind: iteration
	// ends, completed families (parallel path), and breadth-first levels
	// (sequential path).
	for _, b := range []string{"iteration", "family", "level"} {
		if !boundaries[b] {
			t.Errorf("kill sweep never hit a %q boundary snapshot", b)
		}
	}
}

// TestResumeRejectsMismatchedFingerprint: a snapshot resumed against a
// different algorithm, parameter, or table must be refused, not silently
// produce wrong results.
func TestResumeRejectsMismatchedFingerprint(t *testing.T) {
	base := determinismInputs(t)[0]
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck := resilience.NewCheckpointer(path)
	in := base
	in.Check = ck
	ctx, cancel := context.WithCancel(context.Background())
	in.Ctx = ctx
	ck.AfterSave = func(*resilience.Snapshot) { cancel() }
	if _, err := Run(in, Basic); !errors.Is(err, context.Canceled) {
		t.Fatalf("setup run: %v", err)
	}
	snap, err := resilience.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("different algorithm", func(t *testing.T) {
		re := base
		re.Resume = snap
		if _, err := Run(re, Cube); err == nil || errors.Is(err, context.Canceled) {
			t.Fatalf("resume under Cube of a Basic snapshot: err = %v, want fingerprint rejection", err)
		}
	})
	t.Run("different k", func(t *testing.T) {
		re := base
		re.K = base.K + 1
		re.Resume = snap
		if _, err := Run(re, Basic); err == nil {
			t.Fatal("resume with different k succeeded")
		}
	})
	t.Run("SnapshotMatches", func(t *testing.T) {
		in := base
		if !in.SnapshotMatches(snap, Basic.String()) {
			t.Error("SnapshotMatches rejects the snapshot's own configuration")
		}
		if in.SnapshotMatches(snap, Cube.String()) {
			t.Error("SnapshotMatches accepts a different algorithm")
		}
		if in.SnapshotMatches(nil, Basic.String()) {
			t.Error("SnapshotMatches accepts a nil snapshot")
		}
	})
}

// TestResumeRejectsInconsistentSnapshot: structurally corrupt snapshots
// (history shorter than the recorded iteration count, too many iterations
// for the instance) are refused.
func TestResumeRejectsInconsistentSnapshot(t *testing.T) {
	base := determinismInputs(t)[0]
	path := filepath.Join(t.TempDir(), "run.ckpt")
	ck := resilience.NewCheckpointer(path)
	in := base
	in.Check = ck
	ctx, cancel := context.WithCancel(context.Background())
	in.Ctx = ctx
	ck.AfterSave = func(s *resilience.Snapshot) {
		if s.Boundary == "iteration" {
			cancel()
		}
	}
	if _, err := Run(in, Basic); !errors.Is(err, context.Canceled) {
		t.Skipf("run completed before an iteration snapshot landed: %v", err)
	}
	snap, err := resilience.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	mangled := *snap
	mangled.Iter = len(base.QI) + 1
	re := base
	re.Resume = &mangled
	if _, err := Run(re, Basic); err == nil {
		t.Error("resume with Iter beyond the instance succeeded")
	}

	mangled = *snap
	mangled.History = nil
	re = base
	re.Resume = &mangled
	if _, err := Run(re, Basic); err == nil {
		t.Error("resume with missing history succeeded")
	}
}

// TestBudgetSoftPressureForcesSparse pins the first rung of the degradation
// ladder: with the accountant already over its soft budget, every frequency
// set falls back to the sparse kernel and the run still completes with
// bit-identical Solutions and Stats.
func TestBudgetSoftPressureForcesSparse(t *testing.T) {
	for di, base := range determinismInputs(t) {
		for _, v := range []Variant{Basic, SuperRoots, Cube} {
			in := base
			want, err := Run(in, v)
			if err != nil {
				t.Fatal(err)
			}
			const soft = int64(1) << 40
			a := resilience.NewAccountant(soft)
			a.Grant(soft + 1) // simulate external pressure just past the soft budget
			in = base
			in.Budget = a
			got, err := Run(in, v)
			if err != nil {
				t.Fatalf("input=%d %v: budgeted run failed: %v", di, v, err)
			}
			if !reflect.DeepEqual(got.Solutions, want.Solutions) || got.Stats != want.Stats {
				t.Errorf("input=%d %v: sparse-degraded run differs from reference", di, v)
			}
			if a.DenseFallbacks() == 0 {
				t.Errorf("input=%d %v: no dense fallbacks recorded under soft pressure", di, v)
			}
			if a.Exhausted() || a.Aborted() {
				t.Errorf("input=%d %v: soft pressure escalated to the hard stop", di, v)
			}
		}
	}
}

// TestBudgetShedsMaterialization pins the second rung: over the soft budget,
// strategic materialization sheds its waves (an exact, smaller partial cube)
// and the search still answers every root by scanning.
func TestBudgetShedsMaterialization(t *testing.T) {
	base := determinismInputs(t)[1]
	in := base
	refMat := MaterializeBudget(&in, 1<<20)
	if refMat.NumViews() == 0 {
		t.Fatal("setup: unpressured materialization selected no views")
	}
	want, err := RunMaterialized(in, refMat)
	if err != nil {
		t.Fatal(err)
	}

	const soft = int64(1) << 40
	a := resilience.NewAccountant(soft)
	a.Grant(soft + 1)
	in = base
	in.Budget = a
	mat := MaterializeBudget(&in, 1<<20)
	if mat.NumViews() != 0 {
		t.Errorf("pressured materialization still built %d views", mat.NumViews())
	}
	if a.Sheds() == 0 {
		t.Error("no shed events recorded")
	}
	got, err := RunMaterialized(in, mat)
	if err != nil {
		t.Fatalf("run with fully shed materialization failed: %v", err)
	}
	if !reflect.DeepEqual(got.Solutions, want.Solutions) {
		t.Error("shed materialization changed the solution set")
	}
}

// TestBudgetHardStopReturnsProvenSubset pins the last rung: past twice the
// budget the run aborts with ErrDegraded, returning a result whose solutions
// are a subset of the true solution set, with the abort recorded on the
// accountant.
func TestBudgetHardStopReturnsProvenSubset(t *testing.T) {
	for di, base := range determinismInputs(t) {
		reference := make(map[string]bool)
		in := base
		want, err := Run(in, Basic)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range want.Solutions {
			reference[fmt.Sprint(s)] = true
		}
		for _, v := range []Variant{Basic, SuperRoots, Cube} {
			a := resilience.NewAccountant(1) // every long-lived set blows the hard stop
			in := base
			in.Budget = a
			res, err := Run(in, v)
			if !errors.Is(err, resilience.ErrDegraded) {
				t.Fatalf("input=%d %v: err = %v, want ErrDegraded", di, v, err)
			}
			if res == nil {
				t.Fatalf("input=%d %v: degraded run returned no best-so-far result", di, v)
			}
			for _, s := range res.Solutions {
				if !reference[fmt.Sprint(s)] {
					t.Errorf("input=%d %v: degraded run claims non-solution %v", di, v, s)
				}
			}
			if !a.Aborted() {
				t.Errorf("input=%d %v: abort not recorded on the accountant", di, v)
			}
		}
	}
}

// TestBudgetCompleteRunBalancesAccounting: a generous budget changes
// nothing, and the Basic search (whose long-lived sets all die inside the
// run) ends with every granted byte released — the accountant would
// otherwise drift across iterations and poison long sweeps.
func TestBudgetCompleteRunBalancesAccounting(t *testing.T) {
	base := determinismInputs(t)[1]
	in := base
	want, err := Run(in, Basic)
	if err != nil {
		t.Fatal(err)
	}
	a := resilience.NewAccountant(1 << 40)
	in = base
	in.Budget = a
	got, err := Run(in, Basic)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Solutions, want.Solutions) || got.Stats != want.Stats {
		t.Error("generously budgeted run differs from reference")
	}
	if used := a.Used(); used != 0 {
		t.Errorf("accounting leak: %d bytes still granted after a complete Basic run", used)
	}
	if a.DenseFallbacks() != 0 || a.Sheds() != 0 || a.Aborted() {
		t.Error("generous budget recorded degradation events")
	}
}
