package core

// This file implements checkpoint/resume for the Incognito outer loop. A
// snapshot never stores frequency sets — only which nodes were processed
// with what outcome, plus the survivor history of completed iterations.
// Everything else is derived on resume:
//
//   - candidate graphs and node IDs are replayed through lattice.Generate,
//     which is deterministic, so heap tie-breaks (by ID) behave identically;
//   - queue contents, marks, rollup parents and retained frequency sets of
//     a partial breadth-first search are reconstructed from the processed
//     list, replaying outcomes in their original order;
//   - frequency sets of failure-frontier nodes are recomputed by walking
//     each node's rollup-parent chain down to a root (rollup property).
//
// Restore work is deliberately not counted in Stats — it re-does work the
// original run already counted before the snapshot — so a resumed run's
// final Solutions and Stats are bit-identical to an uninterrupted one.

import (
	"fmt"
	"sync"

	"incognito/internal/lattice"
	"incognito/internal/relation"
	"incognito/internal/resilience"
)

// iterResume carries a resumed snapshot's partial state into the iteration
// it interrupts: completed families on the parallel path, or the processed
// frontier on the sequential path (at most one is set).
type iterResume struct {
	families []resilience.FamilyState
	frontier *resilience.Frontier
}

// iterCkpt assembles and saves the mid-iteration snapshots of one subset-size
// iteration. A nil *iterCkpt (checkpointing disabled) no-ops throughout.
// Family saves arrive concurrently from the parallel workers; each save
// includes every family completed so far.
type iterCkpt struct {
	check   *resilience.Checkpointer
	fp      resilience.Fingerprint
	iter    int // completed iterations before this one
	history [][]resilience.NodeKey
	// base is the Stats total through iteration iter, excluding the
	// in-progress iteration's candidate count — the resume path re-adds it.
	base Stats

	mu       sync.Mutex
	families []resilience.FamilyState
	err      error
}

// preload seeds the completed-family list with families restored from the
// snapshot being resumed, so subsequent saves keep carrying them.
func (c *iterCkpt) preload(families []resilience.FamilyState) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.families = append(c.families, families...)
}

// addFamily records one newly completed family and saves a family-boundary
// snapshot carrying all families completed so far.
func (c *iterCkpt) addFamily(fs resilience.FamilyState) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.families = append(c.families, fs)
	snap := &resilience.Snapshot{
		Fingerprint: c.fp,
		Boundary:    "family",
		Iter:        c.iter,
		History:     c.history,
		Stats:       statsToMap(c.base),
		Families:    append([]resilience.FamilyState(nil), c.families...),
	}
	if err := c.check.Save(snap); err != nil && c.err == nil {
		c.err = err
	}
}

// saveLevel saves a level-boundary snapshot of the sequential search:
// the processed-node outcomes so far, and — unlike family snapshots — the
// full running Stats total including the in-progress iteration's work, which
// the resume path therefore does not re-add.
func (c *iterCkpt) saveLevel(processed []resilience.NodeOutcome, total Stats) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	snap := &resilience.Snapshot{
		Fingerprint: c.fp,
		Boundary:    "level",
		Iter:        c.iter,
		History:     c.history,
		Stats:       statsToMap(total),
		Frontier:    &resilience.Frontier{Processed: append([]resilience.NodeOutcome(nil), processed...)},
	}
	if err := c.check.Save(snap); err != nil && c.err == nil {
		c.err = err
	}
}

// takeErr returns the first save error, if any.
func (c *iterCkpt) takeErr() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

// statsToMap flattens Stats onto the trace counter names for serialization.
func statsToMap(s Stats) map[string]int64 {
	return map[string]int64{
		CounterNodesChecked: int64(s.NodesChecked),
		CounterNodesMarked:  int64(s.NodesMarked),
		CounterCandidates:   int64(s.Candidates),
		CounterTableScans:   int64(s.TableScans),
		CounterRollups:      int64(s.Rollups),
		CounterCubeFreqSets: int64(s.CubeFreqSets),
	}
}

// statsFromMap is the inverse of statsToMap.
func statsFromMap(m map[string]int64) Stats {
	return Stats{
		NodesChecked: int(m[CounterNodesChecked]),
		NodesMarked:  int(m[CounterNodesMarked]),
		Candidates:   int(m[CounterCandidates]),
		TableScans:   int(m[CounterTableScans]),
		Rollups:      int(m[CounterRollups]),
		CubeFreqSets: int(m[CounterCubeFreqSets]),
	}
}

// nodeKey is a lattice node's representation-independent checkpoint identity.
func nodeKey(n *lattice.Node) resilience.NodeKey {
	return resilience.NodeKey{
		Dims:   append([]int(nil), n.Dims...),
		Levels: append([]int(nil), n.Levels...),
	}
}

// survivorKeys collects the NodeKeys of the surviving nodes of a searched
// graph, in node-ID order — one entry of a snapshot's History.
func survivorKeys(g *lattice.Graph, surv map[int]bool) []resilience.NodeKey {
	keys := make([]resilience.NodeKey, 0, len(surv))
	for _, n := range g.Nodes() {
		if surv[n.ID] {
			keys = append(keys, nodeKey(n))
		}
	}
	return keys
}

// survivorsFromKeys resolves a History entry against the replayed graph.
// Missing nodes mean the snapshot does not belong to this instance.
func survivorsFromKeys(g *lattice.Graph, keys []resilience.NodeKey) (map[int]bool, error) {
	surv := make(map[int]bool, len(keys))
	for _, k := range keys {
		n := g.Lookup(k.Dims, k.Levels)
		if n == nil {
			return nil, fmt.Errorf("core: resume snapshot names a node %v/%v absent from the replayed graph", k.Dims, k.Levels)
		}
		surv[n.ID] = true
	}
	return surv, nil
}

// restoreFrontier rebuilds a partial breadth-first search from a snapshot's
// processed list, replaying outcomes in their original (heap) order so the
// derived state — marks, rollup parents, pending-generalization counts — is
// exactly what the original run held at the save point. Frequency sets of
// failure-frontier nodes that can still be rolled up from are recomputed by
// walking their rollup-parent chains down to roots; rootFreq must write its
// counters to a discard sink, because this work was already counted before
// the snapshot. Returns the nodes that belong in the queue (pushed but not
// yet processed), in a deterministic order.
func restoreFrontier(in *Input, g *lattice.Graph, fr *resilience.Frontier, roots []*lattice.Node,
	surv, marked, processed, proven map[int]bool, parentOf map[int]int, pendingUps map[int]int,
	freqs map[int]*relation.FreqSet, rootFreq func(*lattice.Node) *relation.FreqSet) ([]*lattice.Node, error) {

	var failedOrder []*lattice.Node
	for _, po := range fr.Processed {
		node := g.Lookup(po.Key.Dims, po.Key.Levels)
		if node == nil {
			return nil, fmt.Errorf("core: resume snapshot names a node %v/%v absent from iteration graph", po.Key.Dims, po.Key.Levels)
		}
		processed[node.ID] = true
		switch po.Outcome {
		case resilience.OutcomePassed:
			if proven != nil {
				proven[node.ID] = true
			}
			for _, up := range g.Up(node.ID) {
				marked[up] = true
			}
		case resilience.OutcomeMarked:
			if proven != nil {
				proven[node.ID] = true
			}
		case resilience.OutcomeFailed:
			surv[node.ID] = false
			for _, up := range g.Up(node.ID) {
				if _, has := parentOf[up]; !has {
					parentOf[up] = node.ID
				}
			}
			failedOrder = append(failedOrder, node)
		default:
			return nil, fmt.Errorf("core: resume snapshot has unknown node outcome %q", po.Outcome)
		}
	}

	// A failed node's frequency set is still needed while it has unprocessed
	// direct generalizations (the originals were released as pendingUps hit
	// zero, so only these are recomputed).
	for _, fn := range failedOrder {
		ups := g.Up(fn.ID)
		if len(ups) == 0 {
			continue
		}
		pending := 0
		for _, up := range ups {
			if !processed[up] {
				pending++
			}
		}
		if pending > 0 {
			pendingUps[fn.ID] = pending
		}
	}
	memo := make(map[int]*relation.FreqSet)
	var compute func(n *lattice.Node) *relation.FreqSet
	compute = func(n *lattice.Node) *relation.FreqSet {
		if f, ok := memo[n.ID]; ok {
			return f
		}
		var f *relation.FreqSet
		if pid, ok := parentOf[n.ID]; ok {
			parent := g.Node(pid)
			f = in.RollupTo(compute(parent), n.Dims, parent.Levels, n.Levels)
		} else {
			f = rootFreq(n)
		}
		memo[n.ID] = f
		return f
	}
	for _, fn := range failedOrder {
		if _, need := pendingUps[fn.ID]; need {
			f := compute(fn)
			freqs[fn.ID] = f
			in.grantFreq(f)
		}
	}

	// The queue at the save point: roots plus the direct generalizations of
	// failed nodes, minus everything already processed. The original run may
	// have pushed a node more than once, but duplicate pops are skipped, so
	// pushing each once is equivalent.
	inQueue := make(map[int]bool)
	var queue []*lattice.Node
	push := func(n *lattice.Node) {
		if !processed[n.ID] && !inQueue[n.ID] {
			inQueue[n.ID] = true
			queue = append(queue, n)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for _, fn := range failedOrder {
		for _, up := range g.Up(fn.ID) {
			push(g.Node(up))
		}
	}
	return queue, nil
}

// degradedErr wraps resilience.ErrDegraded with the budget numbers and
// records the abort on the accountant (the telemetry counter CLIs export).
func degradedErr(in *Input) error {
	in.Budget.NoteAbort()
	return fmt.Errorf("core: %w (estimated %d live bytes against a %d-byte budget)",
		resilience.ErrDegraded, in.Budget.Used(), in.Budget.Budget())
}
