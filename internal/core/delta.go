package core

// This file implements incremental re-anonymization. A completed run can
// capture a RunState: the base-level frequency set as value-string groups
// plus one NodeRecord per checked lattice node (exact counts for the
// groups near k, a floor for the rest, and bounds on the suppression
// tally). A later delta run — the same table edited by a small set of
// added/removed rows — replays the Basic search over the new table but
// answers most k-anonymity checks from the records instead of computing
// frequency sets:
//
//   - every delta row's contribution to a node's groups is known exactly
//     from the record's band, or bounded by its floor;
//   - when the resulting tally bounds stay on one side of the suppression
//     threshold, the node's verdict on the edited table is known exactly
//     and the frequency set is never materialized;
//   - otherwise the node is revalidated for real, rolling up from its
//     recorded parent or from the patched base-level set.
//
// Every verdict the screen emits is exact, so the delta run's control flow
// — marks, queue order, rollup parents — is identical to a cold run over
// the edited table, and the screened path bumps the same Stats counters at
// the same points. Solutions and Stats are therefore bit-identical to a
// cold recomputation by construction; only the work (rows scanned, nodes
// materialized) shrinks, which DeltaCounters reports separately.

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"incognito/internal/lattice"
	"incognito/internal/relation"
	"incognito/internal/resilience"
)

// captureBandSlack is how far above k the capture threshold starts: groups
// with count < k+captureBandSlack get exact band entries, so deltas moving
// a group by less than the slack screen exactly.
const captureBandSlack = 64

// captureBandCap bounds the band size per node; when more groups fall
// under the threshold, the threshold shrinks until the band fits (screening
// then leans on the floor for the dropped groups).
const captureBandCap = 1024

// packStrings packs value strings into one length-prefixed map key (the
// string analogue of relation's packKey; value strings may contain any
// byte, so a separator would not be safe).
func packStrings(vals []string) string {
	var b strings.Builder
	var n [4]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint32(n[:], uint32(len(v)))
		b.Write(n[:])
		b.WriteString(v)
	}
	return b.String()
}

// nodeRecKey identifies a lattice node across runs and bindings.
func nodeRecKey(dims, levels []int) string {
	var b strings.Builder
	for i, d := range dims {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", d)
	}
	b.WriteByte('|')
	for i, l := range levels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", l)
	}
	return b.String()
}

// StateCapture collects NodeRecords as a run checks nodes, for persisting
// as a RunState. Observe is called from the search workers under a mutex;
// Records returns the collection in canonical (dims, levels) order so the
// serialized state is independent of worker scheduling.
type StateCapture struct {
	mu      sync.Mutex
	records []resilience.NodeRecord
}

// Observe captures a NodeRecord for a node whose frequency set f was just
// checked. No-op on a nil capture.
func (c *StateCapture) Observe(in *Input, node *lattice.Node, f *relation.FreqSet) {
	if c == nil {
		return
	}
	rec := buildRecord(in, node.Dims, node.Levels, f)
	c.mu.Lock()
	c.records = append(c.records, rec)
	c.mu.Unlock()
}

// add appends an already-built record (the delta screen's updated records).
func (c *StateCapture) add(rec resilience.NodeRecord) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.records = append(c.records, rec)
	c.mu.Unlock()
}

// Records returns the captured records sorted by (dims, levels).
func (c *StateCapture) Records() []resilience.NodeRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := append([]resilience.NodeRecord(nil), c.records...)
	c.mu.Unlock()
	sortRecords(out)
	return out
}

func sortRecords(recs []resilience.NodeRecord) {
	sort.Slice(recs, func(i, j int) bool {
		return nodeRecKey(recs[i].Dims, recs[i].Levels) < nodeRecKey(recs[j].Dims, recs[j].Levels)
	})
}

// buildRecord summarizes a node's frequency set: the exact suppression
// tally, exact counts for every group under the capture threshold (value
// strings, so the record survives dictionary rebuilds), and the minimum
// count among the remaining groups.
func buildRecord(in *Input, dims, levels []int, f *relation.FreqSet) resilience.NodeRecord {
	k := in.K
	thr := k + captureBandSlack
	type cand struct {
		codes []int32
		n     int64
	}
	var cands []cand
	floor := int64(math.MaxInt64)
	f.Each(func(codes []int32, count int64) {
		if count < thr {
			cands = append(cands, cand{codes: append([]int32(nil), codes...), n: count})
		} else if count < floor {
			floor = count
		}
	})
	if len(cands) > captureBandCap {
		sort.Slice(cands, func(i, j int) bool { return cands[i].n < cands[j].n })
		thr = cands[captureBandCap].n
		for _, c := range cands[captureBandCap:] {
			if c.n < floor {
				floor = c.n
			}
		}
		// Ties at the new threshold straddle the cap boundary; keep only
		// the groups strictly under it so the band is downward-closed.
		kept := cands[:0]
		for _, c := range cands[:captureBandCap] {
			if c.n < thr {
				kept = append(kept, c)
			} else if c.n < floor {
				floor = c.n
			}
		}
		cands = kept
	}
	rec := resilience.NodeRecord{
		Dims:    append([]int(nil), dims...),
		Levels:  append([]int(nil), levels...),
		Thr:     thr,
		Floor:   floor,
		TallyLo: f.TuplesBelow(k),
	}
	rec.TallyHi = rec.TallyLo
	for _, c := range cands {
		vals := make([]string, len(dims))
		for i, d := range dims {
			vals[i] = in.QI[d].H.Value(levels[i], c.codes[i])
		}
		rec.Band = append(rec.Band, resilience.BandEntry{V: vals, N: c.n})
	}
	sortBand(rec.Band)
	return rec
}

// cmpVals orders equal-length value tuples elementwise — the band's
// canonical order, chosen so the screen can binary-search a node's band
// without packing keys (the screen runs once per node per delta run, and
// packing every band entry there dominated the delta run's wall clock).
func cmpVals(a, b []string) int {
	for i := range a {
		if c := strings.Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	return 0
}

func sortBand(band []resilience.BandEntry) {
	sort.Slice(band, func(i, j int) bool {
		return cmpVals(band[i].V, band[j].V) < 0
	})
}

// CaptureBase renders the table's base-level frequency set over the full
// quasi-identifier as value-string groups — the persistent mergeable state
// a delta run patches instead of rescanning. It scans the table once,
// outside the run's Stats accounting.
func CaptureBase(in *Input) []resilience.BaseGroup {
	dims := make([]int, len(in.QI))
	for i := range dims {
		dims[i] = i
	}
	f := relation.GroupCount(in.Table, in.cols(dims), nil)
	var out []resilience.BaseGroup
	f.Each(func(codes []int32, count int64) {
		vals := make([]string, len(dims))
		for i, d := range dims {
			vals[i] = in.QI[d].H.Value(0, codes[i])
		}
		out = append(out, resilience.BaseGroup{V: vals, N: count})
	})
	sort.Slice(out, func(i, j int) bool { return packStrings(out[i].V) < packStrings(out[j].V) })
	return out
}

// DeltaRow is one added or removed row of a delta, pre-generalized:
// Gen[d][l] is the row's value in QI attribute d at hierarchy level l
// (Gen[d][0] is the base value). Callers compute Gen through the
// hierarchies' level functions, so removed rows whose values no longer
// appear in the edited table's dictionaries generalize exactly like they
// did in the original binding.
type DeltaRow struct {
	Gen [][]string
}

// DeltaCounters reports how much work a delta run actually did, next to
// the replayed Stats (which are bit-identical to a cold run by design and
// therefore say nothing about savings).
type DeltaCounters struct {
	// RowsRescanned counts table rows the delta run genuinely scanned: the
	// delta rows themselves, plus a whole-table equivalent for every root
	// frequency set it had to materialize from the patched base state.
	RowsRescanned int64 `json:"rows_rescanned"`
	// NodesScreened counts checked nodes whose verdict came from a
	// NodeRecord without materializing a frequency set.
	NodesScreened int64 `json:"nodes_screened"`
	// NodesRevalidated counts checked nodes that needed a real frequency
	// set (no record, or the delta left the verdict in doubt).
	NodesRevalidated int64 `json:"nodes_revalidated"`
}

// DeltaRun configures an incremental re-anonymization on Input.Delta: the
// RunState a prior run retained, and the rows added to / removed from the
// table that state describes. The run's Input must hold the edited table;
// only the Basic variant supports delta runs, and partitioned scans and
// memory budgets are rejected (Run validates all of this).
type DeltaRun struct {
	State   *resilience.RunState
	Added   []DeltaRow
	Removed []DeltaRow

	st *deltaState
}

// Counters returns the work counters of the last prepared run.
func (d *DeltaRun) Counters() DeltaCounters {
	if d == nil || d.st == nil {
		return DeltaCounters{}
	}
	return DeltaCounters{
		RowsRescanned:    d.st.rowsRescanned.Load(),
		NodesScreened:    d.st.screened.Load(),
		NodesRevalidated: d.st.revalidated.Load(),
	}
}

// BaseGroups returns the patched base-level frequency set as canonical
// value-string groups — the Base of the state describing the edited table.
func (d *DeltaRun) BaseGroups() []resilience.BaseGroup {
	out := make([]resilience.BaseGroup, 0, len(d.st.f0))
	for _, e := range d.st.f0 {
		out = append(out, resilience.BaseGroup{V: e.vals, N: e.count})
	}
	sort.Slice(out, func(i, j int) bool { return packStrings(out[i].V) < packStrings(out[j].V) })
	return out
}

// UntouchedRecords returns the prior state's records for nodes this run
// never visited (marked away, or behind a resumed checkpoint), each
// patched with the delta's group contributions so the full output state
// uniformly describes the edited table. Call after the run completes.
func (d *DeltaRun) UntouchedRecords(in *Input) []resilience.NodeRecord {
	st := d.st
	var out []resilience.NodeRecord
	st.mu.Lock()
	touched := st.touched
	st.mu.Unlock()
	for key, rec := range st.records {
		if touched[key] {
			continue
		}
		node := &lattice.Node{Dims: rec.Dims, Levels: rec.Levels}
		upd, _ := updateRecord(rec, st.groupDeltas(node), in.K, in.MaxSuppress)
		out = append(out, upd)
	}
	sortRecords(out)
	return out
}

// f0Entry is one group of the patched base-level frequency set, carried in
// both forms: value strings (binding-independent, for the output state)
// and the edited table's dictionary codes (for building root sets).
type f0Entry struct {
	vals  []string
	codes []int32
	count int64
}

// deltaState is the runtime of one delta run.
type deltaState struct {
	records map[string]*resilience.NodeRecord
	f0      []f0Entry
	added   []DeltaRow
	removed []DeltaRow
	// addedOld[i] reports whether added row i's full-QI base-level group
	// existed in the prior table. When it did, every node-level group the
	// row lands in existed too (projection and generalization only merge
	// groups), which turns pure additions to off-band groups into exact
	// no-ops: the old count was ≥ Thr ≥ k, so the new count still is.
	addedOld []bool

	mu      sync.Mutex
	touched map[string]bool

	rowsRescanned atomic.Int64
	screened      atomic.Int64
	revalidated   atomic.Int64
}

// prepare validates the state against the input and builds the runtime:
// the record index and the patched base-level set encoded against the
// edited table's dictionaries.
func (d *DeltaRun) prepare(in *Input) error {
	st := d.State
	if st == nil {
		return fmt.Errorf("core: delta run has no prior state")
	}
	if st.K != in.K || st.MaxSuppress != in.MaxSuppress {
		return fmt.Errorf("core: saved state has k=%d, suppress=%d; this run has k=%d, suppress=%d",
			st.K, st.MaxSuppress, in.K, in.MaxSuppress)
	}
	if len(st.Cols) != len(in.QI) {
		return fmt.Errorf("core: saved state covers %d QI attributes, this run has %d", len(st.Cols), len(in.QI))
	}
	for i, q := range in.QI {
		if st.Cols[i] != q.H.Attr() {
			return fmt.Errorf("core: saved state QI attribute %d is %q, this run has %q", i, st.Cols[i], q.H.Attr())
		}
	}
	if want := st.Rows + len(d.Added) - len(d.Removed); want != in.Table.NumRows() {
		return fmt.Errorf("core: saved state covers %d rows and the delta nets %+d, but the table has %d rows",
			st.Rows, len(d.Added)-len(d.Removed), in.Table.NumRows())
	}
	for _, rows := range [][]DeltaRow{d.Added, d.Removed} {
		for _, r := range rows {
			if len(r.Gen) != len(in.QI) {
				return fmt.Errorf("core: delta row generalizes %d attributes, the QI has %d", len(r.Gen), len(in.QI))
			}
		}
	}
	rt := &deltaState{
		records: make(map[string]*resilience.NodeRecord, len(st.Records)),
		added:   d.Added,
		removed: d.Removed,
		touched: make(map[string]bool),
	}
	for i := range st.Records {
		rec := &st.Records[i]
		// Restore the canonical band order: the screen binary-searches it,
		// and a state file may predate the current comparator.
		sortBand(rec.Band)
		rt.records[nodeRecKey(rec.Dims, rec.Levels)] = rec
	}

	// Patch the base-level set: state groups plus ±1 per delta row, pruned
	// at zero, then encoded once against the edited table's dictionaries.
	type acc struct {
		vals  []string
		count int64
	}
	groups := make(map[string]*acc, len(st.Base))
	oldBase := make(map[string]bool, len(st.Base))
	for _, g := range st.Base {
		key := packStrings(g.V)
		groups[key] = &acc{vals: g.V, count: g.N}
		oldBase[key] = true
	}
	rt.addedOld = make([]bool, len(d.Added))
	for i, r := range d.Added {
		vals := make([]string, len(r.Gen))
		for j := range r.Gen {
			vals[j] = r.Gen[j][0]
		}
		rt.addedOld[i] = oldBase[packStrings(vals)]
	}
	bump := func(row DeltaRow, by int64) {
		vals := make([]string, len(row.Gen))
		for i := range row.Gen {
			vals[i] = row.Gen[i][0]
		}
		key := packStrings(vals)
		a := groups[key]
		if a == nil {
			a = &acc{vals: vals}
			groups[key] = a
		}
		a.count += by
		if a.count == 0 {
			delete(groups, key)
		}
	}
	for _, r := range d.Added {
		bump(r, 1)
	}
	for _, r := range d.Removed {
		bump(r, -1)
	}
	var total int64
	for _, a := range groups {
		if a.count < 0 {
			return fmt.Errorf("core: delta removes more %v rows than the saved state holds", a.vals)
		}
		codes := make([]int32, len(in.QI))
		for i, q := range in.QI {
			c, ok := q.H.Dict(0).Code(a.vals[i])
			if !ok {
				return fmt.Errorf("core: saved state group value %q is absent from the edited table", a.vals[i])
			}
			codes[i] = c
		}
		rt.f0 = append(rt.f0, f0Entry{vals: a.vals, codes: codes, count: a.count})
		total += a.count
	}
	if total != int64(in.Table.NumRows()) {
		return fmt.Errorf("core: patched base state covers %d rows, the edited table has %d — the state does not describe this table",
			total, in.Table.NumRows())
	}
	sort.Slice(rt.f0, func(i, j int) bool { return packStrings(rt.f0[i].vals) < packStrings(rt.f0[j].vals) })
	rt.rowsRescanned.Store(int64(len(d.Added) + len(d.Removed)))
	d.st = rt
	return nil
}

// gdelta is the net contribution of the delta rows to one group of a node.
type gdelta struct {
	vals []string // the group's generalized value tuple
	add  int64
	del  int64
	// pre reports the group provably existed in the prior table: some
	// added row landing in it had a pre-existing base-level group (see
	// deltaState.addedOld). Deletions imply existence on their own.
	pre bool
}

// groupDeltas folds the delta rows into per-group contributions at the
// node's generalization, keyed by packed generalized value strings.
func (st *deltaState) groupDeltas(node *lattice.Node) map[string]*gdelta {
	out := make(map[string]*gdelta)
	vals := make([]string, len(node.Dims))
	at := func(row DeltaRow) string {
		for i, d := range node.Dims {
			vals[i] = row.Gen[d][node.Levels[i]]
		}
		return packStrings(vals)
	}
	for i, r := range st.added {
		key := at(r)
		g := out[key]
		if g == nil {
			g = &gdelta{vals: append([]string(nil), vals...)}
			out[key] = g
		}
		g.add++
		if st.addedOld[i] {
			g.pre = true
		}
	}
	for _, r := range st.removed {
		key := at(r)
		g := out[key]
		if g == nil {
			g = &gdelta{vals: append([]string(nil), vals...)}
			out[key] = g
		}
		g.del++
	}
	return out
}

// Verdicts of updateRecord.
const (
	verdictUnknown = iota
	verdictPass
	verdictFail
)

// updateRecord applies per-group delta contributions to a node's record,
// returning the record describing the edited table plus the k-anonymity
// verdict when the updated tally bounds decide it. Band hits update
// exactly; groups covered only by the floor widen the tally bounds by the
// worst case a group near k can contribute. All updates are commutative,
// so map iteration order cannot change the result.
func updateRecord(rec *resilience.NodeRecord, deltas map[string]*gdelta, k, maxSuppress int64) (resilience.NodeRecord, int) {
	contrib := func(x int64) int64 {
		if x > 0 && x < k {
			return x
		}
		return 0
	}
	// The band is kept sorted by cmpVals, so each delta group resolves by
	// binary search — no per-node key packing or map build.
	newBand := make([]resilience.BandEntry, len(rec.Band))
	copy(newBand, rec.Band)
	inBand := func(vals []string) *resilience.BandEntry {
		i := sort.Search(len(newBand), func(i int) bool { return cmpVals(newBand[i].V, vals) >= 0 })
		if i < len(newBand) && cmpVals(newBand[i].V, vals) == 0 {
			return &newBand[i]
		}
		return nil
	}
	lo, hi := int64(0), int64(0)
	floor := rec.Floor
	inconsistent := false
	for _, gd := range deltas {
		delta := gd.add - gd.del
		if e := inBand(gd.vals); e != nil {
			nn := e.N + delta
			if nn < 0 {
				inconsistent = true
				nn = 0
			}
			ch := contrib(nn) - contrib(e.N)
			lo += ch
			hi += ch
			e.N = nn
			continue
		}
		if gd.del > 0 {
			// The group existed (rows were removed from it) but is not in
			// the band, so its old count is at least Floor ≥ Thr.
			if rec.Floor == math.MaxInt64 {
				inconsistent = true
				continue
			}
			switch {
			case rec.Floor >= k && rec.Floor+delta >= k:
				// Old and new counts both provably ≥ k: tally unchanged.
				if f := rec.Floor + delta; f < floor {
					floor = f
				}
			case rec.Floor >= k:
				hi += k - 1
				floor = 1
			default:
				lo -= k - 1
				hi += k - 1
				floor = 1
			}
			continue
		}
		// Pure additions to a group that is either new or above the band.
		if gd.pre && rec.Floor != math.MaxInt64 {
			// The group provably pre-existed; off the band, its old count
			// was ≥ Thr ≥ k, so old and new counts both contribute nothing
			// to the tally and the new count exceeds the old Floor. Exact.
			continue
		}
		switch {
		case rec.Floor >= k && delta >= k:
			// New count is ≥ k whether the group existed or not.
			if delta < floor {
				floor = delta
			}
		case rec.Floor >= k:
			hi += delta // a brand-new group of `delta` undersized tuples
			if delta < floor {
				floor = delta
			}
		default:
			lo -= k - 1
			hi += min64(delta, k-1)
			if delta < floor {
				floor = delta
			}
		}
	}
	upd := resilience.NodeRecord{
		Dims:    append([]int(nil), rec.Dims...),
		Levels:  append([]int(nil), rec.Levels...),
		Thr:     rec.Thr,
		Floor:   floor,
		TallyLo: rec.TallyLo + lo,
		TallyHi: rec.TallyHi + hi,
	}
	if upd.TallyLo < 0 {
		upd.TallyLo = 0
	}
	for _, e := range newBand {
		if e.N != 0 {
			upd.Band = append(upd.Band, e)
		}
	}
	sortBand(upd.Band)
	verdict := verdictUnknown
	if !inconsistent {
		switch {
		case upd.TallyHi <= maxSuppress:
			verdict = verdictPass
		case upd.TallyLo > maxSuppress:
			verdict = verdictFail
		}
	}
	return upd, verdict
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// screen attempts to decide a node's k-anonymity verdict on the edited
// table from its record alone. ok reports whether the verdict is exact; a
// false ok means the caller must revalidate (no record, or the tally
// bounds straddle the threshold). On success the updated record is fed to
// the input's capture, so the new state reflects the edited table.
func (st *deltaState) screen(in *Input, node *lattice.Node) (pass, ok bool) {
	key := nodeRecKey(node.Dims, node.Levels)
	rec := st.records[key]
	if rec == nil {
		return false, false
	}
	upd, verdict := updateRecord(rec, st.groupDeltas(node), in.K, in.MaxSuppress)
	if verdict == verdictUnknown {
		return false, false
	}
	st.mu.Lock()
	st.touched[key] = true
	st.mu.Unlock()
	in.Capture.add(upd)
	st.screened.Add(1)
	return verdict == verdictPass, true
}

// noteRevalidated marks a node as freshly measured this run: its old
// record (if any) is superseded by the capture's Observe, not reconciled.
func (st *deltaState) noteRevalidated(node *lattice.Node) {
	st.mu.Lock()
	st.touched[nodeRecKey(node.Dims, node.Levels)] = true
	st.mu.Unlock()
	st.revalidated.Add(1)
}

// rootFromF0 builds a root node's frequency set by rolling the patched
// base-level set up to the node's generalization — the delta substitute
// for a base-table scan, identical by the rollup property. The kernel
// choice mirrors what a real scan of the table would pick, so downstream
// behavior cannot depend on how the set was produced.
func (st *deltaState) rootFromF0(in *Input, n *lattice.Node) *relation.FreqSet {
	cols := in.cols(n.Dims)
	card := in.cardAt(n.Dims, n.Levels)
	var f *relation.FreqSet
	if card != nil && relation.DenseEligible(card, in.Table.NumRows()) {
		f = relation.NewFreqSetWithCard(cols, card)
	} else {
		f = relation.NewFreqSet(cols)
	}
	maps := in.recodeTables(n.Dims, n.Levels)
	codes := make([]int32, len(n.Dims))
	for _, e := range st.f0 {
		for i, d := range n.Dims {
			c := e.codes[d]
			if m := maps[i]; m != nil {
				c = m[c]
			}
			codes[i] = c
		}
		f.Add(codes, e.count)
	}
	st.rowsRescanned.Add(int64(in.Table.NumRows()))
	return f
}

// force materializes the frequency set of a screened-failed node whose set
// was deferred (freqs holds nil): it walks the rollup-parent chain down to
// a root, builds the root from the patched base state, and rolls back up,
// filling freqs along the way. This work re-derives what the replayed
// Stats already charged for, so it is deliberately uncounted there.
func (st *deltaState) force(in *Input, g *lattice.Graph, parentOf map[int]int, freqs map[int]*relation.FreqSet, n *lattice.Node) *relation.FreqSet {
	if f, ok := freqs[n.ID]; ok && f != nil {
		return f
	}
	var f *relation.FreqSet
	if pid, ok := parentOf[n.ID]; ok {
		parent := g.Node(pid)
		pf := freqs[pid]
		if pf == nil {
			pf = st.force(in, g, parentOf, freqs, parent)
		}
		f = in.RollupTo(pf, n.Dims, parent.Levels, n.Levels)
	} else {
		f = st.rootFromF0(in, n)
	}
	if _, tracked := freqs[n.ID]; tracked {
		freqs[n.ID] = f
	}
	return f
}
