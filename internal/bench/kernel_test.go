package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestKernelCellsIdentical runs the end-to-end kernel comparison on a
// small Adults sample and requires the dense kernel to reproduce the
// sparse kernel's results exactly in every cell.
func TestKernelCellsIdentical(t *testing.T) {
	d := small()
	algos := []Algo{BasicIncognito, SuperRootsIncognito, CubeIncognito}
	cells, err := Kernel(context.Background(), Obs{}, d, 4, 2, algos, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(algos) {
		t.Fatalf("got %d cells, want %d", len(cells), len(algos))
	}
	for _, c := range cells {
		if !c.Identical {
			t.Errorf("%s: dense kernel diverged from sparse", c.Algo)
		}
		if c.Solutions <= 0 {
			t.Errorf("%s: no solutions recorded", c.Algo)
		}
	}
}

// TestKernelMicrosAreDenseEligibleAndIdentical checks the microbenchmark
// layout picker lands on a dense-eligible generalization and that both
// kernels agree on the scan and the rollup, with the dense per-tuple hot
// path allocation-free.
func TestKernelMicrosAreDenseEligibleAndIdentical(t *testing.T) {
	d := small()
	micros, err := KernelMicros(d, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(micros) != 2 {
		t.Fatalf("got %d micro rows, want 2 (scan, rollup)", len(micros))
	}
	for _, m := range micros {
		if !m.DenseEligible {
			t.Errorf("%s: layout %v (%d cells) is not dense-eligible", m.Op, m.Levels, m.Cells)
		}
		if !m.Identical {
			t.Errorf("%s: kernels disagree", m.Op)
		}
		if m.Groups <= 0 {
			t.Errorf("%s: no groups", m.Op)
		}
		if m.DenseAddAllocsPerOp != 0 {
			t.Errorf("%s: dense Add allocates %.2f objects/op, want 0", m.Op, m.DenseAddAllocsPerOp)
		}
	}
}

// TestKernelReportRenders smoke-tests both output formats.
func TestKernelReportRenders(t *testing.T) {
	d := small()
	r := NewKernelReport()
	cells, err := Kernel(context.Background(), Obs{}, d, 3, 2, []Algo{BasicIncognito}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Cells = cells
	micros, err := KernelMicros(d, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Micro = micros
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"dense_max_cells\"") {
		t.Fatal("JSON report missing dense_max_cells")
	}
	buf.Reset()
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "kernel") {
		t.Fatal("table report missing header")
	}
}
