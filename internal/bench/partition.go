package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"incognito/internal/dataset"
	"incognito/internal/partition"
	"incognito/internal/relation"
)

// PartitionCell is one single-process-vs-partitioned comparison: the same
// (dataset, QI size, k, algorithm) cell run with local scans and with its
// base-table scans split across a pool of worker processes, with the
// bit-identical cross-check on solutions and counters.
type PartitionCell struct {
	Dataset       string  `json:"dataset"`
	Rows          int     `json:"rows"`
	QISize        int     `json:"qi_size"`
	K             int64   `json:"k"`
	Algo          string  `json:"algo"`
	Partitions    int     `json:"partitions"`
	SingleMS      float64 `json:"single_ms"`
	PartitionedMS float64 `json:"partitioned_ms"`
	Speedup       float64 `json:"speedup"`
	Solutions     int     `json:"solutions"`
	MinHeight     int     `json:"min_height"`
	// The single-process run's work counters — deterministic for a fixed
	// (dataset, rows, seed, qi, k, algorithm), pinned by the CI gate. The
	// partitioned run must reproduce every one of them (Identical below):
	// partitioning moves where a scan's rows are counted, never how many
	// scans run or what they produce.
	NodesChecked int `json:"nodes_checked"`
	NodesMarked  int `json:"nodes_marked"`
	Candidates   int `json:"candidates"`
	TableScans   int `json:"table_scans"`
	Rollups      int `json:"rollups"`
	// Identical reports whether the partitioned run reproduced the
	// single-process run's solution count, minimum height, and every Stats
	// counter — the acceptance contract of partition mode.
	Identical bool `json:"identical"`
}

// PartitionReport is the JSON document cmd/bench -experiment partition
// emits (recorded at the repo root as BENCH_partition.json).
type PartitionReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	Partitions int             `json:"partitions"`
	Cells      []PartitionCell `json:"cells"`
}

// Partition runs the single-process-vs-partitioned comparison for each
// algorithm on one (dataset, QI size, k) workload. Both runs are
// sequential inside the coordinator (parallelism 1), so the only variable
// is where the base-table scans count their rows: locally, or across the
// pool's worker processes. The pool must have been built for d's table.
func Partition(ctx context.Context, obs Obs, pool *partition.Pool, d *dataset.Dataset, qiSize int, k int64, algos []Algo, progress Progress) ([]PartitionCell, error) {
	if pool.Rows() != d.Table.NumRows() {
		return nil, fmt.Errorf("bench: partition pool was built for %d rows but %s has %d",
			pool.Rows(), d.Name, d.Table.NumRows())
	}
	var cells []PartitionCell
	for _, a := range algos {
		single, err := RunCell(ctx, obs, d, qiSize, k, a, 1)
		if err != nil {
			return nil, err
		}
		pobs := obs
		pobs.Scan = poolScan(pool)
		part, err := RunCell(ctx, pobs, d, qiSize, k, a, 1)
		if err != nil {
			return nil, err
		}
		cell := PartitionCell{
			Dataset:       d.Name,
			Rows:          d.Table.NumRows(),
			QISize:        qiSize,
			K:             k,
			Algo:          a.String(),
			Partitions:    pool.Workers(),
			SingleMS:      ms(single.Elapsed),
			PartitionedMS: ms(part.Elapsed),
			Solutions:     single.Solutions,
			MinHeight:     single.MinHeight,
			NodesChecked:  single.Stats.NodesChecked,
			NodesMarked:   single.Stats.NodesMarked,
			Candidates:    single.Stats.Candidates,
			TableScans:    single.Stats.TableScans,
			Rollups:       single.Stats.Rollups,
			Identical: single.Solutions == part.Solutions &&
				single.MinHeight == part.MinHeight &&
				single.Stats == part.Stats,
		}
		if part.Elapsed > 0 {
			cell.Speedup = float64(single.Elapsed) / float64(part.Elapsed)
		}
		progress.Log("%s | QID=%d k=%d | %-22s | single %v, %d partitions %v (%.2fx, identical=%v)",
			d.Name, qiSize, k, a, single.Elapsed.Round(time.Millisecond), pool.Workers(),
			part.Elapsed.Round(time.Millisecond), cell.Speedup, cell.Identical)
		cells = append(cells, cell)
	}
	return cells, nil
}

// poolScan adapts a partition pool to the Obs.Scan hook. The bench cells
// run with the adaptive dense kernel and no memory budget, so the
// workers' kernel choice mirrors the coordinator's unconditionally.
func poolScan(pool *partition.Pool) func(dims, levels []int) (*relation.FreqSet, error) {
	return func(dims, levels []int) (*relation.FreqSet, error) {
		return pool.Scan(dims, levels, false)
	}
}

// WriteJSON renders the report as indented JSON.
func (r *PartitionReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report as an aligned text table.
func (r *PartitionReport) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Single-process vs partitioned scans (GOMAXPROCS=%d, partitions=%d)\n", r.GOMAXPROCS, r.Partitions); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%s QID=%d k=%d %-24s single %.1fms partitioned %.1fms speedup %.2fx identical=%v\n",
			c.Dataset, c.QISize, c.K, c.Algo, c.SingleMS, c.PartitionedMS, c.Speedup, c.Identical); err != nil {
			return err
		}
	}
	return nil
}

// NewPartitionReport assembles a report header for the current process.
func NewPartitionReport(partitions int) *PartitionReport {
	return &PartitionReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Partitions: partitions}
}
