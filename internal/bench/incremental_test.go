package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestIncrementalCellsIdenticalAndBounded is the tentpole's acceptance
// contract at bench scale: on a small Adults sample, every delta cell
// (kernel × parallelism) reproduces the cold run's solutions and Stats
// bit for bit while re-scanning at most 10% of the cold run's rows and
// revalidating at most 10% of its nodes.
func TestIncrementalCellsIdenticalAndBounded(t *testing.T) {
	d := small()
	cells, err := Incremental(context.Background(), Obs{}, d, 4, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4 (kernel {auto,sparse} × parallelism {1,2})", len(cells))
	}
	for _, c := range cells {
		name := c.Kernel + "/p=" + string(rune('0'+c.Parallelism))
		if !c.Identical {
			t.Errorf("%s: delta run diverged from the cold run", name)
		}
		if c.Solutions <= 0 {
			t.Errorf("%s: no solutions recorded", name)
		}
		if c.AddedRows == 0 || c.RemovedRows == 0 {
			t.Errorf("%s: empty delta (added=%d removed=%d)", name, c.AddedRows, c.RemovedRows)
		}
		if c.RowRescanRatio <= 0 || c.RowRescanRatio > 0.10 {
			t.Errorf("%s: row rescan ratio %.4f outside (0, 0.10]", name, c.RowRescanRatio)
		}
		if c.NodeRevalidationRatio < 0 || c.NodeRevalidationRatio > 0.10 {
			t.Errorf("%s: node revalidation ratio %.4f outside [0, 0.10]", name, c.NodeRevalidationRatio)
		}
		if c.NodesScreened+c.NodesRevalidated != int64(c.NodesChecked) {
			t.Errorf("%s: screened %d + revalidated %d != nodes checked %d",
				name, c.NodesScreened, c.NodesRevalidated, c.NodesChecked)
		}
	}
	// The deterministic counters must not depend on the kernel or the
	// worker count — only the timings may differ across cells.
	for _, c := range cells[1:] {
		a, b := cells[0], c
		a.Kernel, a.Parallelism, a.ColdMS, a.DeltaMS, a.Speedup = b.Kernel, b.Parallelism, b.ColdMS, b.DeltaMS, b.Speedup
		if a != b {
			t.Errorf("counters differ between cells:\n  %+v\n  %+v", cells[0], c)
		}
	}
}

// TestIncrementalReportRenders smoke-tests both output formats.
func TestIncrementalReportRenders(t *testing.T) {
	d := small()
	r := NewIncrementalReport()
	cells, err := Incremental(context.Background(), Obs{}, d, 3, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Cells = cells
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"\"delta_every\"", "\"rows_rescanned\"", "\"row_rescan_ratio\"", "\"identical\""} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON output missing %s", want)
		}
	}
	buf.Reset()
	if err := r.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "identical=true") {
		t.Errorf("table output missing identical=true:\n%s", buf.String())
	}
}
