package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"strings"
	"sync"
	"testing"

	"incognito/internal/core"
	"incognito/internal/dataset"
	"incognito/internal/partition"
)

// testPool wires a partition pool whose workers are goroutines serving
// over in-process pipes — the same Serve loop and wire codec as the
// spawned processes of cmd/bench, minus the exec, so the test stays
// hermetic and fast.
func testPool(t *testing.T, d *dataset.Dataset, qiSize, workers int) *partition.Pool {
	t.Helper()
	cols, hs, err := d.QISubset(qiSize)
	if err != nil {
		t.Fatal(err)
	}
	peers := make([]partition.Peer, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		reqR, reqW := io.Pipe()
		respR, respW := io.Pipe()
		in := core.NewInput(d.Table, cols, hs, 2, 0)
		wg.Add(1)
		go func(i int, in core.Input, r *io.PipeReader, w *io.PipeWriter) {
			defer wg.Done()
			w.CloseWithError(partition.Serve(&in, i, workers, r, w))
		}(i, in, reqR, respW)
		peers[i] = partition.Peer{R: respR, W: reqW}
	}
	pool := partition.NewPool(d.Table.NumRows(), peers)
	t.Cleanup(func() {
		pool.Close()
		wg.Wait()
	})
	return pool
}

// TestPartitionExperimentIdentical runs the partition experiment against a
// three-worker pool: every cell must report identical=true (the
// acceptance contract), and a pool built for a different table must be
// rejected up front.
func TestPartitionExperimentIdentical(t *testing.T) {
	d := dataset.Adults(400, 7)
	pool := testPool(t, d, 4, 3)
	algos := []Algo{BasicIncognito, SuperRootsIncognito, CubeIncognito}
	cells, err := Partition(context.Background(), Obs{}, pool, d, 4, 2, algos, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(algos) {
		t.Fatalf("got %d cells, want %d", len(cells), len(algos))
	}
	for _, c := range cells {
		if !c.Identical {
			t.Errorf("%s: partitioned run diverged from the single-process run", c.Algo)
		}
		if c.Partitions != 3 || c.Rows != d.Table.NumRows() || c.TableScans == 0 {
			t.Errorf("%s: implausible cell %+v", c.Algo, c)
		}
	}

	other := dataset.Adults(200, 7)
	if _, err := Partition(context.Background(), Obs{}, pool, other, 4, 2, algos[:1], nil); err == nil {
		t.Fatal("pool/table row mismatch not rejected")
	}
}

func TestPartitionReportRenders(t *testing.T) {
	d := dataset.Adults(200, 7)
	pool := testPool(t, d, 3, 2)
	cells, err := Partition(context.Background(), Obs{}, pool, d, 3, 2, []Algo{BasicIncognito}, nil)
	if err != nil {
		t.Fatal(err)
	}
	report := NewPartitionReport(2)
	report.Cells = cells
	if report.GOMAXPROCS < 1 || report.Partitions != 2 {
		t.Fatalf("bad report header %+v", report)
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded PartitionReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(decoded.Cells) != 1 || !decoded.Cells[0].Identical {
		t.Fatalf("decoded report lost its cell: %+v", decoded)
	}

	buf.Reset()
	if err := report.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Single-process vs partitioned", "Basic Incognito", "identical=true"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, buf.String())
		}
	}
}
