package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"incognito/internal/dataset"
)

func small() *dataset.Dataset { return dataset.Adults(400, 1) }

func TestRunAllAlgorithmsAgree(t *testing.T) {
	d := small()
	var wantSolutions, wantMin int
	for i, a := range AllAlgos {
		m, err := Run(d, 3, 2, a)
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if m.Elapsed <= 0 {
			t.Fatalf("%v: non-positive elapsed time", a)
		}
		if a == BinarySearch {
			// Binary search returns one solution; its height must match.
			if m.MinHeight != wantMin {
				t.Fatalf("binary search min height %d, others %d", m.MinHeight, wantMin)
			}
			continue
		}
		if i == 0 {
			wantSolutions, wantMin = m.Solutions, m.MinHeight
			continue
		}
		if m.Solutions != wantSolutions || m.MinHeight != wantMin {
			t.Fatalf("%v disagrees: %d solutions (want %d), min height %d (want %d)",
				a, m.Solutions, wantSolutions, m.MinHeight, wantMin)
		}
	}
}

func TestRunCubeSeparatesPhases(t *testing.T) {
	d := small()
	m, err := Run(d, 4, 2, CubeIncognito)
	if err != nil {
		t.Fatal(err)
	}
	if m.BuildTime <= 0 || m.AnonTime <= 0 {
		t.Fatalf("cube phases not measured: build %v, anon %v", m.BuildTime, m.AnonTime)
	}
	if m.BuildTime+m.AnonTime > m.Elapsed+m.Elapsed/2 {
		t.Fatalf("phase times inconsistent with total: %v + %v vs %v", m.BuildTime, m.AnonTime, m.Elapsed)
	}
}

func TestRunErrors(t *testing.T) {
	d := small()
	if _, err := Run(d, 0, 2, BasicIncognito); err == nil {
		t.Fatal("QI size 0 accepted")
	}
	if _, err := Run(d, 99, 2, BasicIncognito); err == nil {
		t.Fatal("oversized QI accepted")
	}
	if _, err := Run(d, 3, 0, BasicIncognito); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Run(d, 3, 2, Algo(42)); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestParseAlgo(t *testing.T) {
	for _, name := range []string{"bottomup", "bottomup-rollup", "binary", "basic", "cube", "superroots"} {
		if _, err := ParseAlgo(name); err != nil {
			t.Fatalf("ParseAlgo(%q): %v", name, err)
		}
	}
	if _, err := ParseAlgo("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestFig10Sweep(t *testing.T) {
	d := small()
	var logged []string
	s, err := Fig10(context.Background(), Obs{}, d, 2, 3, 4, []Algo{BasicIncognito, BinarySearch}, func(f string, a ...interface{}) {
		logged = append(logged, f)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.RowNames) != 2 || len(s.ColNames) != 2 {
		t.Fatalf("sweep shape %dx%d, want 2x2", len(s.RowNames), len(s.ColNames))
	}
	if len(logged) != 4 {
		t.Fatalf("progress called %d times, want 4", len(logged))
	}
	var buf bytes.Buffer
	if err := s.WriteElapsed(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "QID size") || !strings.Contains(out, "Basic Incognito") {
		t.Fatalf("table output malformed:\n%s", out)
	}
	buf.Reset()
	if err := s.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(buf.String(), "\n"); lines != 3 {
		t.Fatalf("CSV has %d lines, want 3:\n%s", lines, buf.String())
	}
}

func TestFig11Staggered(t *testing.T) {
	d := small()
	s, err := Fig11(context.Background(), Obs{}, d, 4, []int64{2, 5}, []Algo{BinarySearch, BasicIncognito},
		map[Algo]int{BinarySearch: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s.ColNames[0], "QID=3") || !strings.Contains(s.ColNames[1], "QID=4") {
		t.Fatalf("stagger not reflected in columns: %v", s.ColNames)
	}
}

func TestNodesTableShape(t *testing.T) {
	d := small()
	s, err := NodesTable(context.Background(), Obs{}, d, 2, 3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteNodes(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Incognito") {
		t.Fatalf("nodes table malformed:\n%s", buf.String())
	}
	// The Incognito column never exceeds the bottom-up column by more than
	// the sub-lattice overhead; at these sizes it should simply be ≤.
	for r := range s.Cells {
		bu, inc := s.Cells[r][0], s.Cells[r][1]
		if inc.Stats.NodesChecked > bu.Stats.NodesChecked {
			t.Fatalf("QID %s: incognito checked %d nodes, bottom-up %d",
				s.RowNames[r], inc.Stats.NodesChecked, bu.Stats.NodesChecked)
		}
	}
}

func TestFig12Breakdown(t *testing.T) {
	d := small()
	s, err := Fig12(context.Background(), Obs{}, d, 2, 3, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteElapsed(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Cube Build") {
		t.Fatalf("fig12 table malformed:\n%s", buf.String())
	}
}

func TestDescribe(t *testing.T) {
	var buf bytes.Buffer
	if err := Describe(small(), &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Adults", "Age", "74", "Taxonomy tree(2)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe output missing %q:\n%s", want, out)
		}
	}
}
