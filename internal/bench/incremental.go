package bench

// This file is the incremental experiment: re-anonymization after a ~1%
// row delta, measured against a cold recomputation over the edited table.
// A first run over the original table captures a RunState (base-level
// frequency groups plus per-node records); the delta run replays the
// Basic search over the edited table screening nodes from that state. The
// acceptance contract is counter-based so it holds on any box: Solutions
// and Stats bit-identical to the cold run in every cell, while rows
// re-scanned and nodes revalidated stay small fractions of the cold run's
// work. Timings are informational.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"runtime"
	"time"

	"incognito/internal/core"
	"incognito/internal/dataset"
	"incognito/internal/hierarchy"
	"incognito/internal/relation"
	"incognito/internal/resilience"
)

// DeltaEvery is the sampling stride of the canonical ~1% edit: every
// DeltaEvery-th row is duplicated (an addition) and the row after it is
// deleted, so the delta touches 2/DeltaEvery of the table.
const DeltaEvery = 200

// IncrementalCell is one delta-vs-cold comparison at a fixed kernel and
// parallelism setting.
type IncrementalCell struct {
	Dataset     string `json:"dataset"`
	Rows        int    `json:"rows"` // edited-table rows
	QISize      int    `json:"qi_size"`
	K           int64  `json:"k"`
	Kernel      string `json:"kernel"` // "auto" or "sparse"
	Parallelism int    `json:"parallelism"`
	AddedRows   int    `json:"added_rows"`
	RemovedRows int    `json:"removed_rows"`

	ColdMS  float64 `json:"cold_ms"`
	DeltaMS float64 `json:"delta_ms"`
	Speedup float64 `json:"speedup"`

	// The cold run's results and work counters over the edited table —
	// deterministic for a fixed (dataset, rows, seed, qi, k), pinned by the
	// CI incremental-regression gate. The delta run must reproduce the
	// solutions and every Stats counter bit for bit (Identical below).
	Solutions    int `json:"solutions"`
	MinHeight    int `json:"min_height"`
	NodesChecked int `json:"nodes_checked"`
	NodesMarked  int `json:"nodes_marked"`
	Candidates   int `json:"candidates"`
	TableScans   int `json:"table_scans"`
	Rollups      int `json:"rollups"`
	// ColdRowsScanned is the cold run's row-scan volume: edited rows times
	// table scans — the denominator of the row-savings claim.
	ColdRowsScanned int64 `json:"cold_rows_scanned"`

	// The delta run's savings counters and their ratios against the cold
	// run. The headline claim is both ratios staying at or under 0.10
	// after a 1% delta.
	RowsRescanned         int64   `json:"rows_rescanned"`
	NodesScreened         int64   `json:"nodes_screened"`
	NodesRevalidated      int64   `json:"nodes_revalidated"`
	RowRescanRatio        float64 `json:"row_rescan_ratio"`
	NodeRevalidationRatio float64 `json:"node_revalidation_ratio"`

	// Identical reports whether the delta run reproduced the cold run's
	// solution set and every Stats counter — the tentpole guarantee.
	Identical bool `json:"identical"`
}

// IncrementalReport is the JSON document cmd/bench -experiment incremental
// emits (recorded at the repo root as BENCH_incremental.json).
type IncrementalReport struct {
	GOMAXPROCS int               `json:"gomaxprocs"`
	DeltaEvery int               `json:"delta_every"`
	Cells      []IncrementalCell `json:"cells"`
}

// NewIncrementalReport assembles a report header for the current process.
func NewIncrementalReport() *IncrementalReport {
	return &IncrementalReport{GOMAXPROCS: runtime.GOMAXPROCS(0), DeltaEvery: DeltaEvery}
}

// Incremental runs the delta-vs-cold comparison on one (dataset, QI size,
// k) workload across kernels {auto, sparse} × parallelism {1, 2}. The
// state is captured once, by a sequential run over the original table —
// exactly how a service retains it — and every cell's delta run screens
// against that same state under its own kernel/parallelism knobs.
func Incremental(ctx context.Context, obs Obs, d *dataset.Dataset, qiSize int, k int64, progress Progress) ([]IncrementalCell, error) {
	cols, hs, err := d.QISubset(qiSize)
	if err != nil {
		return nil, err
	}
	if len(d.Specs) < qiSize {
		return nil, fmt.Errorf("bench: dataset %s retains no hierarchy specs", d.Name)
	}
	specs := d.Specs[:qiSize]

	add, delIdx := sampleDelta(d.Table, DeltaEvery)
	del := make([][]string, len(delIdx))
	for i, idx := range delIdx {
		del[i] = d.Table.Row(idx)
	}
	edited, err := editTable(d.Table, add, delIdx)
	if err != nil {
		return nil, err
	}
	// The edited table assigns fresh dictionary codes, so the hierarchies
	// must be rebound; the retained state survives because it stores value
	// strings, not codes.
	editedHs, err := rebind(edited, cols, specs)
	if err != nil {
		return nil, err
	}
	added, err := deltaRows(cols, specs, add)
	if err != nil {
		return nil, err
	}
	removed, err := deltaRows(cols, specs, del)
	if err != nil {
		return nil, err
	}
	state, err := captureState(ctx, d.Table, cols, hs, k)
	if err != nil {
		return nil, err
	}

	var cells []IncrementalCell
	for _, sparse := range []bool{false, true} {
		for _, par := range []int{1, 2} {
			cold, coldDur, err := runBasic(ctx, obs, edited, cols, editedHs, k, par, sparse, nil)
			if err != nil {
				return nil, err
			}
			run := &core.DeltaRun{State: state, Added: added, Removed: removed}
			dres, deltaDur, err := runBasic(ctx, obs, edited, cols, editedHs, k, par, sparse, run)
			if err != nil {
				return nil, err
			}
			kernel := "auto"
			if sparse {
				kernel = "sparse"
			}
			cell := IncrementalCell{
				Dataset:         d.Name,
				Rows:            edited.NumRows(),
				QISize:          qiSize,
				K:               k,
				Kernel:          kernel,
				Parallelism:     par,
				AddedRows:       len(add),
				RemovedRows:     len(del),
				ColdMS:          float64(coldDur.Microseconds()) / 1000,
				DeltaMS:         float64(deltaDur.Microseconds()) / 1000,
				Solutions:       len(cold.Solutions),
				MinHeight:       cold.MinHeight(),
				NodesChecked:    cold.Stats.NodesChecked,
				NodesMarked:     cold.Stats.NodesMarked,
				Candidates:      cold.Stats.Candidates,
				TableScans:      cold.Stats.TableScans,
				Rollups:         cold.Stats.Rollups,
				ColdRowsScanned: int64(edited.NumRows()) * int64(cold.Stats.TableScans),
				Identical: cold.Stats == dres.Stats &&
					reflect.DeepEqual(cold.Solutions, dres.Solutions),
			}
			if dres.Delta != nil {
				cell.RowsRescanned = dres.Delta.RowsRescanned
				cell.NodesScreened = dres.Delta.NodesScreened
				cell.NodesRevalidated = dres.Delta.NodesRevalidated
			}
			if cell.ColdRowsScanned > 0 {
				cell.RowRescanRatio = float64(cell.RowsRescanned) / float64(cell.ColdRowsScanned)
			}
			if cell.NodesChecked > 0 {
				cell.NodeRevalidationRatio = float64(cell.NodesRevalidated) / float64(cell.NodesChecked)
			}
			if deltaDur > 0 {
				cell.Speedup = float64(coldDur) / float64(deltaDur)
			}
			progress.Log("%s | QID=%d k=%d | %-6s p=%d | cold %v, delta %v | rescan %.1f%%, revalidate %.1f%% (identical=%v)",
				d.Name, qiSize, k, kernel, par, coldDur.Round(time.Millisecond), deltaDur.Round(time.Millisecond),
				100*cell.RowRescanRatio, 100*cell.NodeRevalidationRatio, cell.Identical)
			cells = append(cells, cell)
		}
	}
	return cells, nil
}

// sampleDelta picks the canonical ~1% edit: duplicate every stride-th row,
// delete the row just after it.
func sampleDelta(t *relation.Table, stride int) (add [][]string, delIdx []int) {
	for i := 0; i+1 < t.NumRows(); i += stride {
		add = append(add, t.Row(i))
		delIdx = append(delIdx, i+1)
	}
	return add, delIdx
}

// editTable builds the edited table: t without the rows at delIdx, with
// the add rows appended.
func editTable(t *relation.Table, add [][]string, delIdx []int) (*relation.Table, error) {
	skip := make(map[int]bool, len(delIdx))
	for _, i := range delIdx {
		skip[i] = true
	}
	out := relation.MustNewTable(t.Columns()...)
	for i := 0; i < t.NumRows(); i++ {
		if skip[i] {
			continue
		}
		if err := out.AppendRow(t.Row(i)); err != nil {
			return nil, err
		}
	}
	for _, r := range add {
		if err := out.AppendRow(r); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// rebind binds each spec to the edited table's dictionaries.
func rebind(t *relation.Table, cols []int, specs []*hierarchy.Spec) ([]*hierarchy.Hierarchy, error) {
	hs := make([]*hierarchy.Hierarchy, len(cols))
	for i, col := range cols {
		h, err := specs[i].Bind(t.Dict(col))
		if err != nil {
			return nil, fmt.Errorf("bench: rebinding %s: %w", specs[i].Attr, err)
		}
		hs[i] = h
	}
	return hs, nil
}

// deltaRows pre-generalizes full-schema delta rows through hierarchies
// bound to scratch dictionaries holding exactly the delta rows' values —
// what lets a deleted value generalize even when the edited table no
// longer contains it.
func deltaRows(cols []int, specs []*hierarchy.Spec, rows [][]string) ([]core.DeltaRow, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	out := make([]core.DeltaRow, len(rows))
	for r := range out {
		out[r].Gen = make([][]string, len(cols))
	}
	for d, col := range cols {
		dict := relation.NewDict()
		for _, row := range rows {
			dict.Encode(row[col])
		}
		h, err := specs[d].Bind(dict)
		if err != nil {
			return nil, fmt.Errorf("bench: scratch-binding %s: %w", specs[d].Attr, err)
		}
		for r, row := range rows {
			gen := make([]string, h.Height()+1)
			for l := 0; l <= h.Height(); l++ {
				g, err := h.GeneralizeValue(l, row[col])
				if err != nil {
					return nil, err
				}
				gen[l] = g
			}
			out[r].Gen[d] = gen
		}
	}
	return out, nil
}

// captureState runs the original table once, sequentially, capturing the
// RunState a delta run screens against — the bench equivalent of a service
// job submitted with retain_state.
func captureState(ctx context.Context, t *relation.Table, cols []int, hs []*hierarchy.Hierarchy, k int64) (*resilience.RunState, error) {
	capture := &core.StateCapture{}
	in := core.NewInput(t, cols, hs, k, 0)
	in.Ctx = ctx
	in.Parallelism = 1
	in.Capture = capture
	if _, err := core.Run(in, core.Basic); err != nil {
		return nil, err
	}
	colNames := make([]string, len(hs))
	for i, h := range hs {
		colNames[i] = h.Attr()
	}
	return &resilience.RunState{
		Cols:    colNames,
		K:       k,
		Rows:    t.NumRows(),
		Base:    core.CaptureBase(&in),
		Records: capture.Records(),
	}, nil
}

// runBasic runs the Basic variant on one table, optionally as a delta run.
func runBasic(ctx context.Context, obs Obs, t *relation.Table, cols []int, hs []*hierarchy.Hierarchy, k int64, par int, sparse bool, delta *core.DeltaRun) (*core.Result, time.Duration, error) {
	in := core.NewInput(t, cols, hs, k, 0)
	in.Ctx = ctx
	in.Parallelism = par
	in.SparseKernel = sparse
	in.Trace = obs.Tracer
	in.Progress = obs.Progress
	in.Metrics = obs.Metrics
	if delta != nil {
		in.Capture = &core.StateCapture{}
		in.Delta = delta
	}
	start := time.Now()
	res, err := core.Run(in, core.Basic)
	if err != nil {
		return nil, 0, err
	}
	return res, time.Since(start), nil
}

// WriteJSON renders the report as indented JSON.
func (r *IncrementalReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report as an aligned text table.
func (r *IncrementalReport) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Incremental re-anonymization after a 2/%d row delta (GOMAXPROCS=%d)\n",
		r.DeltaEvery, r.GOMAXPROCS); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%s QID=%d k=%d %-6s p=%d cold %.1fms delta %.1fms speedup %.2fx rescan %.1f%% revalidate %.1f%% identical=%v\n",
			c.Dataset, c.QISize, c.K, c.Kernel, c.Parallelism, c.ColdMS, c.DeltaMS, c.Speedup,
			100*c.RowRescanRatio, 100*c.NodeRevalidationRatio, c.Identical); err != nil {
			return err
		}
	}
	return nil
}
