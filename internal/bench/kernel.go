package bench

// This file is the kernel experiment: the dense mixed-radix frequency-set
// kernel measured against the sparse map reference, end-to-end (whole
// algorithm runs with the kernel forced each way) and in isolation (scan
// and rollup microbenchmarks on dense-eligible generalized layouts).
// Counters, group counts, and the dense allocs/op pin are deterministic
// and gated in CI; timings and speedups are informational.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"incognito/internal/dataset"
	"incognito/internal/hierarchy"
	"incognito/internal/relation"
)

// KernelCell is one end-to-end kernel comparison: the same (dataset, QI
// size, k, algorithm) cell run with the sparse kernel forced and with the
// adaptive dense kernel, with a cross-check that both produced identical
// results.
type KernelCell struct {
	Dataset  string  `json:"dataset"`
	Rows     int     `json:"rows"`
	QISize   int     `json:"qi_size"`
	K        int64   `json:"k"`
	Algo     string  `json:"algo"`
	SparseMS float64 `json:"sparse_ms"`
	DenseMS  float64 `json:"dense_ms"`
	Speedup  float64 `json:"speedup"`
	// The sparse run's results and work counters — deterministic for a
	// given workload, pinned by the CI kernel-regression gate.
	Solutions    int `json:"solutions"`
	MinHeight    int `json:"min_height"`
	NodesChecked int `json:"nodes_checked"`
	NodesMarked  int `json:"nodes_marked"`
	Candidates   int `json:"candidates"`
	TableScans   int `json:"table_scans"`
	Rollups      int `json:"rollups"`
	// Identical reports whether the dense run reproduced the sparse run's
	// solution count, minimum height, and every Stats counter — the
	// kernel's bit-identical-results guarantee.
	Identical bool `json:"identical"`
}

// KernelMicro is one microbenchmark row: the same scan or rollup executed
// by both kernels on a dense-eligible generalized layout of the dataset's
// quasi-identifier.
type KernelMicro struct {
	Op      string `json:"op"` // "scan" or "rollup"
	Dataset string `json:"dataset"`
	Rows    int    `json:"rows"`
	QISize  int    `json:"qi_size"`
	// Levels is the generalization the operation runs at (for "rollup",
	// the source levels; TargetLevels is where it rolls up to).
	Levels       []int `json:"levels"`
	TargetLevels []int `json:"target_levels,omitempty"`
	// Cells is the mixed-radix cell count of the result layout; the row is
	// dense-eligible when relation.DenseEligible accepts it for this input
	// size.
	Cells         int64   `json:"cells"`
	DenseEligible bool    `json:"dense_eligible"`
	Groups        int     `json:"groups"` // distinct result groups (deterministic)
	SparseMS      float64 `json:"sparse_ms"`
	DenseMS       float64 `json:"dense_ms"`
	Speedup       float64 `json:"speedup"`
	// DenseAddAllocsPerOp is an AllocsPerRun-style pin on the dense kernel's
	// per-tuple hot path (Add on an existing dense set): it must stay 0.
	DenseAddAllocsPerOp float64 `json:"dense_add_allocs_per_op"`
	// Identical reports whether both kernels produced the same groups, the
	// same counts, and the same EachSorted order.
	Identical bool `json:"identical"`
}

// KernelReport is the JSON document cmd/bench -experiment kernel emits
// (recorded at the repo root as BENCH_kernel.json).
type KernelReport struct {
	GOMAXPROCS    int           `json:"gomaxprocs"`
	DenseMaxCells int64         `json:"dense_max_cells"`
	Cells         []KernelCell  `json:"cells"`
	Micro         []KernelMicro `json:"micro"`
}

// Kernel runs the end-to-end kernel comparison for each algorithm on one
// (dataset, QI size, k) workload: every cell sequentially with the sparse
// kernel forced, then with the adaptive dense kernel, back to back.
func Kernel(ctx context.Context, obs Obs, d *dataset.Dataset, qiSize int, k int64, algos []Algo, progress Progress) ([]KernelCell, error) {
	var cells []KernelCell
	for _, a := range algos {
		sparse, err := RunCellKernel(ctx, obs, d, qiSize, k, a, 1, true)
		if err != nil {
			return nil, err
		}
		dense, err := RunCellKernel(ctx, obs, d, qiSize, k, a, 1, false)
		if err != nil {
			return nil, err
		}
		cell := KernelCell{
			Dataset:      d.Name,
			Rows:         d.Table.NumRows(),
			QISize:       qiSize,
			K:            k,
			Algo:         a.String(),
			SparseMS:     float64(sparse.Elapsed.Microseconds()) / 1000,
			DenseMS:      float64(dense.Elapsed.Microseconds()) / 1000,
			Solutions:    sparse.Solutions,
			MinHeight:    sparse.MinHeight,
			NodesChecked: sparse.Stats.NodesChecked,
			NodesMarked:  sparse.Stats.NodesMarked,
			Candidates:   sparse.Stats.Candidates,
			TableScans:   sparse.Stats.TableScans,
			Rollups:      sparse.Stats.Rollups,
			Identical: sparse.Solutions == dense.Solutions &&
				sparse.MinHeight == dense.MinHeight &&
				sparse.Stats == dense.Stats,
		}
		if dense.Elapsed > 0 {
			cell.Speedup = float64(sparse.Elapsed) / float64(dense.Elapsed)
		}
		progress.Log("%s | QID=%d k=%d | %-22s | sparse %v, dense %v (%.2fx, identical=%v)",
			d.Name, qiSize, k, a, sparse.Elapsed.Round(time.Millisecond),
			dense.Elapsed.Round(time.Millisecond), cell.Speedup, cell.Identical)
		cells = append(cells, cell)
	}
	return cells, nil
}

// kernelLayout describes one generalized layout of the quasi-identifier:
// table columns, recode tables, per-column cardinalities, and levels.
type kernelLayout struct {
	cols   []int
	levels []int
	recode [][]int32
	card   []int
	cells  int64
}

// generalizedLayout picks the canonical dense-eligible generalization for
// the microbenchmarks: starting at the base levels, it repeatedly raises
// the attribute with the largest current domain until the layout passes
// relation.DenseEligible for a scan of `rows` tuples (mirroring how the
// search's generalized nodes shrink domains, and exactly the bound the
// adaptive kernel applies). err if even the fully generalized QI is too
// large.
func generalizedLayout(cols []int, hs []*hierarchy.Hierarchy, rows int) (kernelLayout, error) {
	levels := make([]int, len(cols))
	for {
		l := layoutAt(cols, hs, levels)
		if relation.DenseEligible(l.card, rows) {
			return l, nil
		}
		// Raise the attribute with the largest current domain.
		best, bestSize := -1, 1
		for i, h := range hs {
			if levels[i] < h.Height() && h.LevelSize(levels[i]) > bestSize {
				best, bestSize = i, h.LevelSize(levels[i])
			}
		}
		if best < 0 {
			return kernelLayout{}, fmt.Errorf("bench: quasi-identifier is never dense-eligible for %d rows, even fully generalized", rows)
		}
		levels[best]++
	}
}

// layoutAt assembles the layout of the quasi-identifier at fixed levels.
func layoutAt(cols []int, hs []*hierarchy.Hierarchy, levels []int) kernelLayout {
	l := kernelLayout{cols: cols, levels: append([]int(nil), levels...), cells: 1}
	l.recode = make([][]int32, len(cols))
	l.card = make([]int, len(cols))
	for i, h := range hs {
		l.recode[i] = h.MapTo(levels[i])
		l.card[i] = h.LevelSize(levels[i])
		l.cells *= int64(l.card[i])
	}
	return l
}

// composeSteps builds the γ⁺ table of one hierarchy from level `from` to
// level `to` (nil when from == to), the dimension map a rollup recodes
// through.
func composeSteps(h *hierarchy.Hierarchy, from, to int) []int32 {
	if from == to {
		return nil
	}
	table := append([]int32(nil), h.Step(from)...)
	for l := from + 1; l < to; l++ {
		step := h.Step(l)
		for i, c := range table {
			table[i] = step[c]
		}
	}
	return table
}

// sameFreq reports whether two frequency sets are observably identical:
// same groups, same counts, same EachSorted order.
func sameFreq(a, b *relation.FreqSet) bool {
	if a.Len() != b.Len() {
		return false
	}
	type row struct {
		codes string
		count int64
	}
	collect := func(f *relation.FreqSet) []row {
		out := make([]row, 0, f.Len())
		buf := make([]byte, 0, 64)
		f.EachSorted(func(codes []int32, count int64) {
			buf = buf[:0]
			for _, c := range codes {
				buf = append(buf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
			}
			out = append(out, row{string(buf), count})
		})
		return out
	}
	ra, rb := collect(a), collect(b)
	for i := range ra {
		if ra[i] != rb[i] {
			return false
		}
	}
	return true
}

// timeOp measures fn over iters runs and returns milliseconds per run.
func timeOp(iters int, fn func()) float64 {
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Microseconds()) / 1000 / float64(iters)
}

// allocsPerRun is testing.AllocsPerRun without importing the testing
// package into a non-test binary: the mean number of heap allocations per
// invocation of fn.
func allocsPerRun(runs int, fn func()) float64 {
	fn() // warm up (first-call lazy work must not count)
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < runs; i++ {
		fn()
	}
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(runs)
}

// KernelMicros runs the scan and rollup microbenchmarks on the dataset's
// quasi-identifier at its canonical dense-eligible generalized layout:
// the same GroupCount and Recode executed by both kernels, with identical
// outputs required and the dense per-tuple hot path pinned at 0 allocs/op.
func KernelMicros(d *dataset.Dataset, qiSize int, progress Progress) ([]KernelMicro, error) {
	cols, hs, err := d.QISubset(qiSize)
	if err != nil {
		return nil, err
	}
	rows := d.Table.NumRows()
	layout, err := generalizedLayout(cols, hs, rows)
	if err != nil {
		return nil, err
	}
	iters := 1 + 2_000_000/(rows+1)

	// Scan: the fused dense counting loop vs the sparse map scan.
	sparseScan := relation.GroupCountWithCard(d.Table, layout.cols, layout.recode, nil)
	denseScan := relation.GroupCountWithCard(d.Table, layout.cols, layout.recode, layout.card)
	scan := KernelMicro{
		Op:            "scan",
		Dataset:       d.Name,
		Rows:          rows,
		QISize:        qiSize,
		Levels:        layout.levels,
		Cells:         layout.cells,
		DenseEligible: denseScan.Dense(),
		Groups:        denseScan.Len(),
		Identical:     sameFreq(denseScan, sparseScan),
		SparseMS: timeOp(iters, func() {
			relation.GroupCountWithCard(d.Table, layout.cols, layout.recode, nil)
		}),
		DenseMS: timeOp(iters, func() {
			relation.GroupCountWithCard(d.Table, layout.cols, layout.recode, layout.card)
		}),
	}
	if scan.DenseMS > 0 {
		scan.Speedup = scan.SparseMS / scan.DenseMS
	}
	// Pin the per-tuple hot path: Add into an existing dense set must not
	// allocate. Paired +1/-1 adds keep the set unchanged across runs.
	var probe []int32
	denseScan.EachSorted(func(codes []int32, count int64) {
		if probe == nil {
			probe = append([]int32(nil), codes...)
		}
	})
	if probe != nil {
		scan.DenseAddAllocsPerOp = allocsPerRun(512, func() {
			denseScan.Add(probe, 1)
			denseScan.Add(probe, -1)
		})
	}
	progress.Log("%s | QID=%d | scan at %v | sparse %.3fms, dense %.3fms (%.2fx, identical=%v, allocs/op=%.0f)",
		d.Name, qiSize, scan.Levels, scan.SparseMS, scan.DenseMS, scan.Speedup, scan.Identical, scan.DenseAddAllocsPerOp)

	// Rollup: dense→dense index-remap pass vs sparse re-grouping, rolling
	// one level further up every attribute that can go. The source is a
	// deeper-generalized layout than the scan's: a rollup's input in the
	// search is itself a generalized frequency set, so the canonical rollup
	// regime has cell count on the order of the row count (occupancy ≈ 1),
	// not the scan threshold's maximum.
	src, err := generalizedLayout(cols, hs, rows/relation.DenseCellsPerUnit)
	if err != nil {
		return nil, err
	}
	target := append([]int(nil), src.levels...)
	for i, h := range hs {
		if target[i] < h.Height() {
			target[i]++
		}
	}
	maps := make([][]int32, len(cols))
	targetCard := make([]int, len(cols))
	targetCells := int64(1)
	for i, h := range hs {
		maps[i] = composeSteps(h, src.levels[i], target[i])
		targetCard[i] = h.LevelSize(target[i])
		targetCells *= int64(targetCard[i])
	}
	sparseSrc := relation.GroupCountWithCard(d.Table, src.cols, src.recode, nil)
	denseSrc := relation.GroupCountWithCard(d.Table, src.cols, src.recode, src.card)
	sparseRoll := sparseSrc.RecodeWithCard(maps, nil)
	denseRoll := denseSrc.RecodeWithCard(maps, targetCard)
	rollIters := 1 + 50_000_000/(int(src.cells)+1)
	roll := KernelMicro{
		Op:            "rollup",
		Dataset:       d.Name,
		Rows:          rows,
		QISize:        qiSize,
		Levels:        src.levels,
		TargetLevels:  target,
		Cells:         targetCells,
		DenseEligible: denseRoll.Dense(),
		Groups:        denseRoll.Len(),
		Identical:     sameFreq(denseRoll, sparseRoll),
		SparseMS: timeOp(rollIters, func() {
			sparseSrc.RecodeWithCard(maps, nil)
		}),
		DenseMS: timeOp(rollIters, func() {
			denseSrc.RecodeWithCard(maps, targetCard)
		}),
	}
	if roll.DenseMS > 0 {
		roll.Speedup = roll.SparseMS / roll.DenseMS
	}
	progress.Log("%s | QID=%d | rollup %v -> %v | sparse %.3fms, dense %.3fms (%.2fx, identical=%v)",
		d.Name, qiSize, roll.Levels, roll.TargetLevels, roll.SparseMS, roll.DenseMS, roll.Speedup, roll.Identical)

	return []KernelMicro{scan, roll}, nil
}

// WriteJSON renders the report as indented JSON.
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report as an aligned text table.
func (r *KernelReport) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Sparse vs dense frequency-set kernel (GOMAXPROCS=%d, dense threshold %d cells)\n",
		r.GOMAXPROCS, r.DenseMaxCells); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%s QID=%d k=%d %-24s sparse %.1fms dense %.1fms speedup %.2fx identical=%v\n",
			c.Dataset, c.QISize, c.K, c.Algo, c.SparseMS, c.DenseMS, c.Speedup, c.Identical); err != nil {
			return err
		}
	}
	for _, m := range r.Micro {
		if _, err := fmt.Fprintf(w, "%s QID=%d %-7s at %v cells=%d sparse %.3fms dense %.3fms speedup %.2fx identical=%v allocs/op=%.0f\n",
			m.Dataset, m.QISize, m.Op, m.Levels, m.Cells, m.SparseMS, m.DenseMS, m.Speedup, m.Identical, m.DenseAddAllocsPerOp); err != nil {
			return err
		}
	}
	return nil
}

// NewKernelReport assembles a report header for the current process.
func NewKernelReport() *KernelReport {
	return &KernelReport{GOMAXPROCS: runtime.GOMAXPROCS(0), DenseMaxCells: relation.DenseMaxCells}
}
