package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
	"time"

	"incognito/internal/dataset"
)

// Sweep is a formatted experiment: a grid of measurements with labeled rows
// (the swept parameter) and columns (usually algorithms).
type Sweep struct {
	Title    string
	RowLabel string
	RowNames []string
	ColNames []string
	Cells    [][]*Measurement // Cells[row][col]; nil when skipped
}

// Progress receives a line per completed cell; a nil Progress disables
// reporting (Log on a nil Progress is a no-op).
type Progress func(format string, args ...interface{})

// Log reports one progress line; it is safe to call on a nil Progress.
func (p Progress) Log(format string, args ...interface{}) {
	if p != nil {
		p(format, args...)
	}
}

// Fig10 sweeps quasi-identifier size for a fixed k over the given
// algorithms — one panel of Fig. 10. ctx cancels the sweep between and
// inside cells; obs (optional, zero value disables) instruments every cell.
func Fig10(ctx context.Context, obs Obs, d *dataset.Dataset, k int64, qiMin, qiMax int, algos []Algo, progress Progress) (*Sweep, error) {
	s := &Sweep{
		Title:    fmt.Sprintf("Figure 10: %s database (k=%d), %d rows", d.Name, k, d.Table.NumRows()),
		RowLabel: "QID size",
	}
	for _, a := range algos {
		s.ColNames = append(s.ColNames, a.String())
	}
	for qi := qiMin; qi <= qiMax; qi++ {
		row := make([]*Measurement, len(algos))
		for i, a := range algos {
			m, err := RunCell(ctx, obs, d, qi, k, a, 1)
			if err != nil {
				return nil, err
			}
			progress.Log("%s | QID=%d k=%d | %-22s | %v", d.Name, qi, k, a, m.Elapsed.Round(time.Millisecond))
			row[i] = &m
		}
		s.RowNames = append(s.RowNames, fmt.Sprintf("%d", qi))
		s.Cells = append(s.Cells, row)
	}
	return s, nil
}

// Fig11 sweeps k at a fixed quasi-identifier size — one panel of Fig. 11.
// qiOverride maps an algorithm to a different QI size, reproducing the
// staggered Lands End panel (Binary Search at QID 6, Incognito at QID 8).
func Fig11(ctx context.Context, obs Obs, d *dataset.Dataset, qiSize int, ks []int64, algos []Algo, qiOverride map[Algo]int, progress Progress) (*Sweep, error) {
	s := &Sweep{
		Title:    fmt.Sprintf("Figure 11: %s database (QID size %d), %d rows", d.Name, qiSize, d.Table.NumRows()),
		RowLabel: "k",
	}
	for _, a := range algos {
		qi := qiSize
		if o, ok := qiOverride[a]; ok {
			qi = o
		}
		s.ColNames = append(s.ColNames, fmt.Sprintf("%s (QID=%d)", a, qi))
	}
	for _, k := range ks {
		row := make([]*Measurement, len(algos))
		for i, a := range algos {
			qi := qiSize
			if o, ok := qiOverride[a]; ok {
				qi = o
			}
			m, err := RunCell(ctx, obs, d, qi, k, a, 1)
			if err != nil {
				return nil, err
			}
			progress.Log("%s | QID=%d k=%d | %-22s | %v", d.Name, qi, k, a, m.Elapsed.Round(time.Millisecond))
			row[i] = &m
		}
		s.RowNames = append(s.RowNames, fmt.Sprintf("%d", k))
		s.Cells = append(s.Cells, row)
	}
	return s, nil
}

// NodesTable reproduces the §4.2.1 table: generalization nodes whose
// k-anonymity was explicitly checked, bottom-up versus Incognito, by
// quasi-identifier size.
func NodesTable(ctx context.Context, obs Obs, d *dataset.Dataset, k int64, qiMin, qiMax int, progress Progress) (*Sweep, error) {
	s := &Sweep{
		Title:    fmt.Sprintf("§4.2.1 table: nodes searched, %s database (k=%d), %d rows", d.Name, k, d.Table.NumRows()),
		RowLabel: "QID size",
		ColNames: []string{"Bottom-Up", "Incognito"},
	}
	for qi := qiMin; qi <= qiMax; qi++ {
		bu, err := RunCell(ctx, obs, d, qi, k, BottomUpRollup, 1)
		if err != nil {
			return nil, err
		}
		inc, err := RunCell(ctx, obs, d, qi, k, BasicIncognito, 1)
		if err != nil {
			return nil, err
		}
		progress.Log("%s | QID=%d | bottom-up %d nodes, incognito %d nodes", d.Name, qi, bu.Stats.NodesChecked, inc.Stats.NodesChecked)
		s.RowNames = append(s.RowNames, fmt.Sprintf("%d", qi))
		s.Cells = append(s.Cells, []*Measurement{&bu, &inc})
	}
	return s, nil
}

// Fig12 reproduces the Cube Incognito cost breakdown: zero-generalization
// cube build time versus anonymization time, by quasi-identifier size.
func Fig12(ctx context.Context, obs Obs, d *dataset.Dataset, k int64, qiMin, qiMax int, progress Progress) (*Sweep, error) {
	s := &Sweep{
		Title:    fmt.Sprintf("Figure 12: Cube Incognito cost breakdown, %s database (k=%d), %d rows", d.Name, k, d.Table.NumRows()),
		RowLabel: "QID size",
		ColNames: []string{"Cube Build Time", "Anonymization Time", "Total"},
	}
	for qi := qiMin; qi <= qiMax; qi++ {
		m, err := RunCell(ctx, obs, d, qi, k, CubeIncognito, 1)
		if err != nil {
			return nil, err
		}
		progress.Log("%s | QID=%d | build %v, anonymize %v", d.Name, qi,
			m.BuildTime.Round(time.Millisecond), m.AnonTime.Round(time.Millisecond))
		s.RowNames = append(s.RowNames, fmt.Sprintf("%d", qi))
		s.Cells = append(s.Cells, []*Measurement{&m, &m, &m})
	}
	return s, nil
}

// WriteElapsed renders a sweep with elapsed milliseconds per cell.
func (s *Sweep) WriteElapsed(w io.Writer) error {
	return s.write(w, func(col int, m *Measurement) string {
		switch {
		case strings.HasPrefix(s.ColNames[col], "Cube Build"):
			return fmtMillis(m.BuildTime)
		case strings.HasPrefix(s.ColNames[col], "Anonymization"):
			return fmtMillis(m.AnonTime)
		default:
			return fmtMillis(m.Elapsed)
		}
	})
}

// WriteNodes renders a sweep with the nodes-checked counter per cell.
func (s *Sweep) WriteNodes(w io.Writer) error {
	return s.write(w, func(_ int, m *Measurement) string {
		return fmt.Sprintf("%d", m.Stats.NodesChecked)
	})
}

// WriteCSV renders the sweep as CSV with the same cell metric selection as
// WriteElapsed but in raw milliseconds.
func (s *Sweep) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", s.RowLabel, strings.Join(s.ColNames, ",")); err != nil {
		return err
	}
	for r, name := range s.RowNames {
		cells := make([]string, len(s.Cells[r]))
		for c, m := range s.Cells[r] {
			switch {
			case m == nil:
				cells[c] = ""
			case strings.HasPrefix(s.ColNames[c], "Cube Build"):
				cells[c] = fmt.Sprintf("%.3f", float64(m.BuildTime.Microseconds())/1000)
			case strings.HasPrefix(s.ColNames[c], "Anonymization"):
				cells[c] = fmt.Sprintf("%.3f", float64(m.AnonTime.Microseconds())/1000)
			default:
				cells[c] = fmt.Sprintf("%.3f", float64(m.Elapsed.Microseconds())/1000)
			}
		}
		if _, err := fmt.Fprintf(w, "%s,%s\n", name, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

func (s *Sweep) write(w io.Writer, cell func(col int, m *Measurement) string) error {
	if _, err := fmt.Fprintln(w, s.Title); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s\t%s\n", s.RowLabel, strings.Join(s.ColNames, "\t"))
	for r, name := range s.RowNames {
		cells := make([]string, len(s.Cells[r]))
		for c, m := range s.Cells[r] {
			if m == nil {
				cells[c] = "-"
				continue
			}
			cells[c] = cell(c, m)
		}
		fmt.Fprintf(tw, "%s\t%s\n", name, strings.Join(cells, "\t"))
	}
	return tw.Flush()
}

func fmtMillis(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// Describe renders the Fig. 9 dataset description.
func Describe(d *dataset.Dataset, w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s database (%d rows)\n", d.Name, d.Table.NumRows()); err != nil {
		return err
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "\tAttribute\tDistinct Values\tGeneralizations")
	for i, info := range d.Info {
		fmt.Fprintf(tw, "%d\t%s\t%d\t%s(%d)\n", i+1, info.Name, info.DistinctValues, info.Generalization, info.Height)
	}
	return tw.Flush()
}
