// Package bench is the experiment harness behind §4 of the paper: it runs
// one (dataset, quasi-identifier size, k, algorithm) cell, measures elapsed
// time and the work counters, and formats the sweeps that regenerate each
// figure. cmd/bench drives it from the command line; the repository-root
// benchmark suite drives it from testing.B.
package bench

import (
	"context"
	"fmt"
	"time"

	"incognito/internal/baseline"
	"incognito/internal/core"
	"incognito/internal/dataset"
	"incognito/internal/relation"
	"incognito/internal/resilience"
	"incognito/internal/telemetry"
	"incognito/internal/trace"
)

// Obs bundles the optional observability and resilience instruments a cell
// runs under: a span tracer, live progress counters, runtime-metrics
// histograms, a checkpointer (with an optional snapshot to resume from),
// and a memory-budget accountant. The zero value disables all of them;
// each field is independently optional (nil handles are no-ops), so
// callers opt into exactly the instruments they need. Instruments never
// change Solutions or Stats; Budget can (it degrades the run under memory
// pressure), which is the point.
type Obs struct {
	Tracer   *trace.Tracer
	Progress *telemetry.Progress
	Metrics  *telemetry.RunMetrics
	Check    *resilience.Checkpointer
	Resume   *resilience.Snapshot
	Budget   *resilience.Accountant
	// Scan, when non-nil, replaces every base-table frequency-set scan of
	// the cell (it becomes core.Input.ScanOverride). The partition
	// experiment routes scans through a pool of worker processes with it;
	// results must stay bit-identical, which the experiment verifies.
	Scan func(dims, levels []int) (*relation.FreqSet, error)
}

// Algo identifies one of the six algorithms compared in Fig. 10.
type Algo int

const (
	BottomUpNoRollup Algo = iota
	BottomUpRollup
	BinarySearch
	BasicIncognito
	CubeIncognito
	SuperRootsIncognito
)

// AllAlgos lists the algorithms in the legend order of Fig. 10.
var AllAlgos = []Algo{
	BottomUpNoRollup, BinarySearch, BottomUpRollup,
	BasicIncognito, CubeIncognito, SuperRootsIncognito,
}

// String names the algorithm as the paper's figure legends do.
func (a Algo) String() string {
	switch a {
	case BottomUpNoRollup:
		return "Bottom-Up (w/o rollup)"
	case BottomUpRollup:
		return "Bottom-Up (w/ rollup)"
	case BinarySearch:
		return "Binary Search"
	case BasicIncognito:
		return "Basic Incognito"
	case CubeIncognito:
		return "Cube Incognito"
	case SuperRootsIncognito:
		return "Super-roots Incognito"
	}
	return "unknown"
}

// ParseAlgo resolves a short algorithm name used by command-line flags.
func ParseAlgo(s string) (Algo, error) {
	switch s {
	case "bottomup":
		return BottomUpNoRollup, nil
	case "bottomup-rollup":
		return BottomUpRollup, nil
	case "binary":
		return BinarySearch, nil
	case "basic":
		return BasicIncognito, nil
	case "cube":
		return CubeIncognito, nil
	case "superroots":
		return SuperRootsIncognito, nil
	}
	return 0, fmt.Errorf("bench: unknown algorithm %q (want bottomup, bottomup-rollup, binary, basic, cube, or superroots)", s)
}

// Measurement is one experiment cell.
type Measurement struct {
	Dataset     string
	Algo        Algo
	QISize      int
	K           int64
	Parallelism int // the Input.Parallelism knob the cell ran with
	Workers     int // the effective worker bound (knob clamped to GOMAXPROCS)
	Elapsed     time.Duration
	BuildTime   time.Duration // cube pre-computation, separated as in Fig. 12
	AnonTime    time.Duration // anonymization excluding cube build
	Stats       core.Stats
	Solutions   int
	MinHeight   int
}

// Run executes one cell: the given algorithm on the first qiSize attributes
// of the dataset at anonymity parameter k, strictly sequentially — the
// reference configuration every paper figure is regenerated with.
func Run(d *dataset.Dataset, qiSize int, k int64, algo Algo) (Measurement, error) {
	return RunParallel(d, qiSize, k, algo, 1)
}

// RunParallel is Run with an explicit intra-run parallelism bound
// (0 = GOMAXPROCS, 1 = sequential, n = at most n workers). Solutions and
// Stats are identical at every setting; only Elapsed changes.
func RunParallel(d *dataset.Dataset, qiSize int, k int64, algo Algo, parallelism int) (Measurement, error) {
	return RunCell(context.Background(), Obs{}, d, qiSize, k, algo, parallelism)
}

// RunCell is the fully instrumented cell runner: RunParallel with a
// cancellation context and an optional observability bundle (the zero Obs
// disables all instruments). Cancelling ctx mid-cell returns an error
// wrapping ctx.Err().
func RunCell(ctx context.Context, obs Obs, d *dataset.Dataset, qiSize int, k int64, algo Algo, parallelism int) (Measurement, error) {
	return RunCellKernel(ctx, obs, d, qiSize, k, algo, parallelism, false)
}

// RunCellKernel is RunCell with an explicit frequency-set kernel selection:
// sparseKernel forces the reference sparse map representation instead of
// the adaptive dense mixed-radix kernel. Solutions and Stats are identical
// either way; the -experiment kernel sweep measures the difference.
func RunCellKernel(ctx context.Context, obs Obs, d *dataset.Dataset, qiSize int, k int64, algo Algo, parallelism int, sparseKernel bool) (Measurement, error) {
	cols, hs, err := d.QISubset(qiSize)
	if err != nil {
		return Measurement{}, err
	}
	in := core.NewInput(d.Table, cols, hs, k, 0)
	in.Parallelism = parallelism
	in.SparseKernel = sparseKernel
	in.Ctx = ctx
	in.Trace = obs.Tracer
	in.Progress = obs.Progress
	in.Metrics = obs.Metrics
	in.Budget = obs.Budget
	in.ScanOverride = obs.Scan
	// Checkpoint/resume applies to the Incognito-variant cells only (the
	// baselines have no resumable frontier), and a resume snapshot is handed
	// to exactly the cell it was written by — a sweep that was killed mid-cell
	// reruns the earlier cells fresh and resumes the interrupted one.
	if algo == BasicIncognito || algo == SuperRootsIncognito || algo == CubeIncognito {
		in.Check = obs.Check
		if obs.Resume != nil && in.SnapshotMatches(obs.Resume, algo.String()) {
			in.Resume = obs.Resume
		}
	}
	m := Measurement{Dataset: d.Name, Algo: algo, QISize: qiSize, K: k,
		Parallelism: parallelism, Workers: in.Workers()}

	cell := obs.Tracer.Start("cell")
	cell.SetAttr("dataset", d.Name)
	cell.SetAttr("qi_size", qiSize)
	cell.SetAttr("k", k)
	cell.SetAttr("algorithm", algo.String())
	in.Span = cell // nest the run's phase spans under this cell
	defer cell.End()

	start := time.Now()
	switch algo {
	case BottomUpNoRollup, BottomUpRollup:
		res, err := baseline.BottomUp(in, algo == BottomUpRollup)
		if err != nil {
			return m, err
		}
		m.Stats, m.Solutions, m.MinHeight = res.Stats, len(res.Solutions), res.MinHeight()
	case BinarySearch:
		res, err := baseline.BinarySearch(in)
		if err != nil {
			return m, err
		}
		m.Stats, m.MinHeight = res.Stats, res.Height
		if res.Solution != nil {
			m.Solutions = 1
		}
	case BasicIncognito, SuperRootsIncognito:
		v := core.Basic
		if algo == SuperRootsIncognito {
			v = core.SuperRoots
		}
		res, err := core.Run(in, v)
		if err != nil {
			return m, err
		}
		m.Stats, m.Solutions, m.MinHeight = res.Stats, len(res.Solutions), res.MinHeight()
	case CubeIncognito:
		buildStart := time.Now()
		cube, err := buildCube(&in)
		m.BuildTime = time.Since(buildStart)
		if err != nil {
			return m, err
		}
		if err := in.Err(); err != nil {
			return m, fmt.Errorf("bench: cube build cancelled: %w", err)
		}
		anonStart := time.Now()
		res, err := core.RunWithCube(in, cube)
		if err != nil {
			return m, err
		}
		m.AnonTime = time.Since(anonStart)
		m.Stats, m.Solutions, m.MinHeight = res.Stats, len(res.Solutions), res.MinHeight()
		m.Stats.Add(cube.BuildStats)
	default:
		return m, fmt.Errorf("bench: unknown algorithm %d", algo)
	}
	m.Elapsed = time.Since(start)
	if algo != CubeIncognito {
		m.AnonTime = m.Elapsed
	}
	return m, nil
}

// buildCube runs the cube pre-computation under a recover guard: a panic on
// a wave worker surfaces from BuildCube as a typed re-panic, converted here
// to a *resilience.PanicError so the cell reports it like any other error.
func buildCube(in *core.Input) (cube *core.CubeIndex, err error) {
	defer func() {
		if r := recover(); r != nil {
			cube, err = nil, resilience.AsPanicError("cube_build", r)
		}
	}()
	return core.BuildCube(in), nil
}
