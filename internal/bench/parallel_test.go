package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"

	"incognito/internal/dataset"
)

// TestParallelExperimentCells runs the serial-vs-parallel comparison
// in-process: every cell must be identical, and the scheduler fields must
// describe a plausible environment (the timing fields are free to be
// anything, including zero on a single-core box).
func TestParallelExperimentCells(t *testing.T) {
	d := dataset.Adults(300, 7)
	algos := []Algo{BasicIncognito, CubeIncognito}
	cells, err := Parallel(context.Background(), Obs{}, d, 4, 2, algos, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(algos) {
		t.Fatalf("got %d cells, want %d", len(cells), len(algos))
	}
	for _, c := range cells {
		if !c.Identical {
			t.Errorf("%s: parallel run diverged from the serial run", c.Algo)
		}
		if c.GOMAXPROCS < 1 || c.Workers < 1 || c.Rows != d.Table.NumRows() {
			t.Errorf("%s: implausible environment fields %+v", c.Algo, c)
		}
		if c.SerialMS < 0 || c.ParallelMS < 0 || c.Utilization < 0 || c.Utilization > 1 {
			t.Errorf("%s: out-of-range timing fields %+v", c.Algo, c)
		}
		if c.Solutions == 0 || c.Candidates == 0 {
			t.Errorf("%s: empty work counters %+v", c.Algo, c)
		}
	}
}

func TestParallelReportRenders(t *testing.T) {
	d := dataset.Adults(200, 7)
	cells, err := Parallel(context.Background(), Obs{}, d, 3, 2, []Algo{BasicIncognito}, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	report := NewParallelReport(2)
	report.Cells = cells
	if report.GOMAXPROCS < 1 || report.Parallelism != 2 {
		t.Fatalf("bad report header %+v", report)
	}

	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded ParallelReport
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(decoded.Cells) != 1 || !decoded.Cells[0].Identical {
		t.Fatalf("decoded report lost its cell: %+v", decoded)
	}

	buf.Reset()
	if err := report.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Serial vs parallel", "Basic Incognito", "identical=true", "workers="} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("table output missing %q:\n%s", want, buf.String())
		}
	}
}
