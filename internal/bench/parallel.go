package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"incognito/internal/dataset"
	"incognito/internal/sched"
	"incognito/internal/telemetry"
)

// schedCounters is a point-in-time reading of the scheduler's cumulative
// counters; cells record the difference between two readings so each
// parallel run's numbers are its own.
type schedCounters struct {
	steals, tasks    int64
	busy, span, wall time.Duration
}

func schedSnapshot(m *sched.Metrics) schedCounters {
	return schedCounters{m.Steals(), m.Tasks(), m.Busy(), m.WorkerSpan(), m.ParallelWall()}
}

func (c schedCounters) sub(o schedCounters) schedCounters {
	return schedCounters{c.steals - o.steals, c.tasks - o.tasks,
		c.busy - o.busy, c.span - o.span, c.wall - o.wall}
}

// ms renders a duration as fractional milliseconds for the JSON reports.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// ParallelCell is one serial-vs-parallel comparison: the same (dataset,
// QI size, k, algorithm) cell timed at parallelism 1 and at the requested
// worker bound, with a determinism cross-check on solutions and counters.
type ParallelCell struct {
	Dataset    string  `json:"dataset"`
	Rows       int     `json:"rows"`
	QISize     int     `json:"qi_size"`
	K          int64   `json:"k"`
	Algo       string  `json:"algo"`
	SerialMS   float64 `json:"serial_ms"`
	ParallelMS float64 `json:"parallel_ms"`
	Speedup    float64 `json:"speedup"`
	// The execution environment and the scheduler's own accounting for the
	// parallel run: the process GOMAXPROCS, the effective worker bound the
	// cell ran with (the knob clamped to GOMAXPROCS), and the Amdahl split
	// of the parallel run's wall time — time inside worker-dispatched
	// scheduler phases vs. the serial remainder between them.
	GOMAXPROCS      int     `json:"gomaxprocs"`
	Workers         int     `json:"workers"`
	ParallelPhaseMS float64 `json:"parallel_phase_ms"`
	SerialPhaseMS   float64 `json:"serial_phase_ms"`
	Steals          int64   `json:"steals"`
	SchedTasks      int64   `json:"sched_tasks"`
	Utilization     float64 `json:"utilization"`
	Solutions       int     `json:"solutions"`
	MinHeight       int     `json:"min_height"`
	// The serial run's work counters — deterministic for a given (dataset,
	// rows, seed, qi, k, algorithm), which is what the CI bench-regression
	// gate pins against golden values under results/.
	NodesChecked int `json:"nodes_checked"`
	NodesMarked  int `json:"nodes_marked"`
	Candidates   int `json:"candidates"`
	TableScans   int `json:"table_scans"`
	Rollups      int `json:"rollups"`
	// Identical reports whether the parallel run reproduced the serial
	// run's solution count, minimum height, and every Stats counter — the
	// tentpole's bit-identical-results guarantee.
	Identical bool `json:"identical"`
}

// ParallelReport is the JSON document cmd/bench -experiment parallel
// emits (recorded at the repo root as BENCH_parallel.json).
type ParallelReport struct {
	GOMAXPROCS  int            `json:"gomaxprocs"`
	Parallelism int            `json:"parallelism"` // the knob value; 0 means GOMAXPROCS
	Cells       []ParallelCell `json:"cells"`
}

// Parallel runs the serial-vs-parallel comparison for each algorithm on
// one (dataset, QI size, k) workload. Serial and parallel cells alternate
// per algorithm so the comparison is as back-to-back as the harness can
// make it. ctx cancels the sweep between and inside cells; obs (optional)
// instruments every cell.
func Parallel(ctx context.Context, obs Obs, d *dataset.Dataset, qiSize int, k int64, algos []Algo, parallelism int, progress Progress) ([]ParallelCell, error) {
	if obs.Metrics == nil {
		// The cells record the scheduler's steal/task/phase-time counters
		// even when the caller asked for no exported telemetry; a throwaway
		// registry provides the handles.
		obs.Metrics = telemetry.NewRegistry().NewRunMetrics()
	}
	sm := obs.Metrics.Sched()
	var cells []ParallelCell
	for _, a := range algos {
		serial, err := RunCell(ctx, obs, d, qiSize, k, a, 1)
		if err != nil {
			return nil, err
		}
		before := schedSnapshot(sm)
		par, err := RunCell(ctx, obs, d, qiSize, k, a, parallelism)
		if err != nil {
			return nil, err
		}
		sched := schedSnapshot(sm).sub(before)
		cell := ParallelCell{
			Dataset:      d.Name,
			Rows:         d.Table.NumRows(),
			QISize:       qiSize,
			K:            k,
			Algo:         a.String(),
			SerialMS:     ms(serial.Elapsed),
			ParallelMS:   ms(par.Elapsed),
			Solutions:    serial.Solutions,
			MinHeight:    serial.MinHeight,
			NodesChecked: serial.Stats.NodesChecked,
			NodesMarked:  serial.Stats.NodesMarked,
			Candidates:   serial.Stats.Candidates,
			TableScans:   serial.Stats.TableScans,
			Rollups:      serial.Stats.Rollups,
			Identical: serial.Solutions == par.Solutions &&
				serial.MinHeight == par.MinHeight &&
				serial.Stats == par.Stats,
		}
		cell.GOMAXPROCS = runtime.GOMAXPROCS(0)
		cell.Workers = par.Workers
		cell.ParallelPhaseMS = ms(sched.wall)
		if rest := par.Elapsed - sched.wall; rest > 0 {
			cell.SerialPhaseMS = ms(rest)
		}
		cell.Steals = sched.steals
		cell.SchedTasks = sched.tasks
		if sched.span > 0 {
			cell.Utilization = float64(sched.busy) / float64(sched.span)
			if cell.Utilization > 1 {
				cell.Utilization = 1 // clock skew between per-task and per-phase readings
			}
		}
		if par.Elapsed > 0 {
			cell.Speedup = float64(serial.Elapsed) / float64(par.Elapsed)
		}
		progress.Log("%s | QID=%d k=%d | %-22s | serial %v, parallel %v (%.2fx, identical=%v)",
			d.Name, qiSize, k, a, serial.Elapsed.Round(time.Millisecond),
			par.Elapsed.Round(time.Millisecond), cell.Speedup, cell.Identical)
		cells = append(cells, cell)
	}
	return cells, nil
}

// WriteJSON renders the report as indented JSON.
func (r *ParallelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteTable renders the report as an aligned text table.
func (r *ParallelReport) WriteTable(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Serial vs parallel (GOMAXPROCS=%d, parallelism=%d)\n", r.GOMAXPROCS, r.Parallelism); err != nil {
		return err
	}
	for _, c := range r.Cells {
		if _, err := fmt.Fprintf(w, "%s QID=%d k=%d %-24s serial %.1fms parallel %.1fms speedup %.2fx workers=%d util=%.2f identical=%v\n",
			c.Dataset, c.QISize, c.K, c.Algo, c.SerialMS, c.ParallelMS, c.Speedup, c.Workers, c.Utilization, c.Identical); err != nil {
			return err
		}
	}
	return nil
}

// NewParallelReport assembles a report header for the current process.
func NewParallelReport(parallelism int) *ParallelReport {
	return &ParallelReport{GOMAXPROCS: runtime.GOMAXPROCS(0), Parallelism: parallelism}
}
