package telemetry

import (
	"runtime"
	"sync"
	"time"
)

// StartSampler begins a periodic runtime sampler that feeds process-level
// gauges into the registry: goroutine count, heap allocation, heap
// objects, total memory obtained from the OS, completed GC cycles, and
// cumulative GC pause time. It samples once immediately, then every
// interval (default one second when interval <= 0), and once more on stop
// so the final exposition reflects the end of the run. The returned stop
// function is idempotent. No-op on a nil registry.
func StartSampler(reg *Registry, interval time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	goroutines := reg.Gauge("incognito_goroutines", "Current number of goroutines.")
	heapAlloc := reg.Gauge("incognito_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).")
	heapObjects := reg.Gauge("incognito_heap_objects", "Number of allocated heap objects.")
	sysBytes := reg.Gauge("incognito_sys_bytes", "Total bytes of memory obtained from the OS.")
	gcCycles := reg.Gauge("incognito_gc_cycles", "Completed GC cycles.")
	gcPause := reg.Gauge("incognito_gc_pause_seconds", "Cumulative GC stop-the-world pause time in seconds.")

	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		goroutines.Set(float64(runtime.NumGoroutine()))
		heapAlloc.Set(float64(ms.HeapAlloc))
		heapObjects.Set(float64(ms.HeapObjects))
		sysBytes.Set(float64(ms.Sys))
		gcCycles.Set(float64(ms.NumGC))
		gcPause.Set(float64(ms.PauseTotalNs) / 1e9)
	}
	sample()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				sample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			sample()
		})
	}
}
