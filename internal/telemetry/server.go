package telemetry

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in telemetry HTTP listener: /metrics serves the
// registry in Prometheus text format and /debug/pprof/ mounts the standard
// net/http/pprof handlers, so a long run can be scraped and profiled live
// (curl :PORT/metrics, go tool pprof :PORT/debug/pprof/profile).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the listener on addr (host:port; a :0 port picks a free
// one — read the bound address back with Addr). The registry may be nil,
// in which case /metrics serves an empty exposition; pprof works
// regardless.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen on %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "incognito telemetry endpoints:")
		fmt.Fprintln(w, "  /metrics       Prometheus text format")
		fmt.Fprintln(w, "  /debug/pprof/  runtime profiles (pprof)")
	})
	Mount(mux, reg)

	s := &Server{ln: ln, srv: &http.Server{Handler: mux}}
	go func() {
		// ErrServerClosed is the normal shutdown path; anything else has no
		// caller to report to, and the run must not die for telemetry.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// Mount registers the telemetry endpoints — /metrics in Prometheus text
// format and the /debug/pprof family — on an existing mux, so a server
// with routes of its own (the incognitod job API) exposes the same
// observability surface as the opt-in listener. The registry may be nil,
// in which case /metrics serves an empty exposition; pprof works
// regardless. The registered patterns are returned so embedders can build
// an endpoint index that cannot drift from what is actually mounted.
func Mount(mux *http.ServeMux, reg *Registry) []string {
	metrics := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// The connection is gone; there is nobody left to tell.
			return
		}
	}
	handlers := []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"/metrics", metrics},
		{"/debug/pprof/", pprof.Index},
		{"/debug/pprof/cmdline", pprof.Cmdline},
		{"/debug/pprof/profile", pprof.Profile},
		{"/debug/pprof/symbol", pprof.Symbol},
		{"/debug/pprof/trace", pprof.Trace},
	}
	patterns := make([]string, 0, len(handlers))
	for _, e := range handlers {
		mux.HandleFunc(e.pattern, e.h)
		patterns = append(patterns, e.pattern)
	}
	return patterns
}

// Addr returns the bound listen address (useful with a :0 port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down, letting in-flight scrapes finish briefly.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return s.srv.Shutdown(ctx)
}
