// Package telemetry is the runtime-telemetry layer of the repository: a
// concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with a Prometheus text-format exporter, an opt-in HTTP
// listener serving /metrics and net/http/pprof, a converter from
// internal/trace documents to Chrome trace-event JSON (openable in
// Perfetto), a periodic runtime.MemStats/goroutine sampler, and live
// progress counters rendered as structured log/slog events.
//
// Not to be confused with internal/metrics, which implements DATA-QUALITY
// metrics over released tables (precision, discernibility, average class
// size — properties of an anonymization). This package measures the
// RUNTIME: where wall-clock time went, how much memory the process used,
// how far a search has progressed. The two namespaces never overlap.
//
// Like internal/trace, the package is built around one invariant: every
// nil handle (*Registry, *Counter, *Gauge, *Histogram, *Progress,
// *RunMetrics) is a fully functional disabled instrument. All methods are
// nil-safe and allocation-free on the nil receiver, so instrumented code
// never branches on "is telemetry on?" and the hot paths pay nothing when
// it is off. Results are bit-identical with telemetry on or off.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds one process's runtime metrics, keyed by Prometheus metric
// name plus label set. All methods are safe for concurrent use, and every
// method of every handle it returns is nil-safe, so a nil *Registry is the
// canonical disabled registry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Enabled reports whether the registry records anything (false on nil).
func (r *Registry) Enabled() bool { return r != nil }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family is one metric name: its metadata plus every label combination
// registered under it.
type family struct {
	name    string
	help    string
	kind    metricKind
	buckets []float64          // histogram upper bounds, ascending
	series  map[string]*series // keyed by rendered label string
}

// series is one (name, labels) time series. Exactly one of the value
// fields is used, per the family's kind.
type series struct {
	labels string // rendered `key="value",…` or "" for unlabeled

	counter atomic.Int64
	gauge   atomic.Uint64 // float64 bits
	fn      func() float64

	hmu     sync.Mutex
	buckets []float64 // the family's bounds, shared read-only
	counts  []uint64  // len(buckets)+1; last bucket is +Inf
	sum     float64
	count   uint64
}

// Counter is a monotonically increasing metric. The nil *Counter no-ops.
type Counter struct{ s *series }

// Add accumulates n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.s.counter.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.s.counter.Load()
}

// Gauge is a metric that can go up and down. The nil *Gauge no-ops.
type Gauge struct{ s *series }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.s.gauge.Store(math.Float64bits(v))
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.s.gauge.Load())
}

// Histogram is a fixed-bucket distribution. The nil *Histogram no-ops.
type Histogram struct{ s *series }

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	s := h.s
	s.hmu.Lock()
	i := sort.SearchFloat64s(s.buckets, v) // first bucket with bound >= v
	s.counts[i]++
	s.sum += v
	s.count++
	s.hmu.Unlock()
}

// validName is the Prometheus metric-name grammar; label names share it
// minus the colon.
var (
	validName  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	validLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// Counter registers (or finds) a counter. labels are alternating
// key/value pairs; registering the same name and labels twice returns the
// same handle, and re-registering a name with a different kind panics (a
// programming error, like a duplicate flag). Nil-safe: a nil registry
// returns a nil handle.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{s: r.register(name, help, kindCounter, nil, nil, labels)}
}

// Gauge registers (or finds) a gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{s: r.register(name, help, kindGauge, nil, nil, labels)}
}

// GaugeFunc registers a gauge whose value is computed by fn at export
// time — the bridge for values that already live elsewhere as atomics
// (e.g. live Progress counters). fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	if r == nil {
		return
	}
	r.register(name, help, kindGauge, nil, fn, labels)
}

// Histogram registers (or finds) a fixed-bucket histogram. buckets are
// upper bounds in ascending order; an implicit +Inf bucket is always
// appended.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	return &Histogram{s: r.register(name, help, kindHistogram, buckets, nil, labels)}
}

func (r *Registry) register(name, help string, kind metricKind, buckets []float64, fn func() float64, labels []string) *series {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, buckets: checkBuckets(name, buckets), series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %v and %v", name, f.kind, kind))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key, fn: fn}
		if kind == kindHistogram {
			s.buckets = f.buckets
			s.counts = make([]uint64, len(f.buckets)+1)
		}
		f.series[key] = s
	}
	return s
}

func checkBuckets(name string, buckets []float64) []float64 {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q buckets not strictly ascending at %d", name, i))
		}
	}
	return append([]float64(nil), buckets...)
}

// renderLabels turns alternating key/value pairs into the canonical
// `key="value",…` form with keys sorted, so the same label set always maps
// to the same series regardless of argument order.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("telemetry: odd label list %q (want key/value pairs)", labels))
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		if !validLabel.MatchString(labels[i]) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", labels[i]))
		}
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteString(`"`)
	}
	return b.String()
}

// escapeLabelValue applies the Prometheus text-format escapes for label
// values: backslash, double quote, and newline.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// Default bucket layouts, shared so every exporter and test agrees on the
// shape of the core distributions.
var (
	// LatencyBuckets spans 100µs to two minutes — phase latencies from a
	// single rollup on the Patients table up to a full Lands End sweep.
	LatencyBuckets = []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120}
	// SizeBuckets is decade-spaced for frequency-set group counts.
	SizeBuckets = []float64{1, 10, 100, 1000, 10000, 100000, 1e6, 1e7}
	// FanInBuckets is power-of-two-spaced for rollup fan-in ratios (source
	// groups folded into each output group).
	FanInBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 1024}
)
