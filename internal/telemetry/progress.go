package telemetry

import "sync/atomic"

// Progress is a live, concurrency-safe view of how far a run has got:
// plain atomic counters bumped from the hot paths of internal/core and
// internal/baseline and read by the progress reporter, the /metrics
// endpoint, or any caller that wants a progress bar. It deliberately
// carries no locks, no maps, and no time — writers pay one atomic add.
//
// A nil *Progress is the canonical disabled handle: every method is
// nil-safe and allocation-free on the nil receiver (guarded by an
// allocation test), mirroring the nil-tracer contract of internal/trace.
// Progress counters are best-effort live approximations of the exact
// core.Stats a run returns; they exist for monitoring, not accounting.
type Progress struct {
	phase         atomic.Pointer[string]
	nodesVisited  atomic.Int64
	nodesTotal    atomic.Int64
	tuplesScanned atomic.Int64
	tableScans    atomic.Int64
	rollups       atomic.Int64
}

// NewProgress returns an enabled progress handle.
func NewProgress() *Progress { return &Progress{} }

// SetPhase names the pipeline phase currently running (shown in progress
// events and useful for dashboards). Unlike the Add methods it may
// allocate; it is called once per phase, never per unit of work.
func (p *Progress) SetPhase(name string) {
	if p == nil {
		return
	}
	p.storePhase(name)
}

// storePhase is split out so the allocation for the boxed string happens
// only on the enabled path — SetPhase on a nil handle stays alloc-free.
func (p *Progress) storePhase(name string) { p.phase.Store(&name) }

// Phase returns the current phase name ("" before the first SetPhase and
// on nil).
func (p *Progress) Phase() string {
	if p == nil {
		return ""
	}
	if s := p.phase.Load(); s != nil {
		return *s
	}
	return ""
}

// AddVisited records n generalization nodes processed (checked or marked).
func (p *Progress) AddVisited(n int64) {
	if p == nil {
		return
	}
	p.nodesVisited.Add(n)
}

// AddCandidates grows the known candidate total — the denominator of the
// completion fraction. Incognito learns it iteration by iteration, the
// bottom-up baseline all at once.
func (p *Progress) AddCandidates(n int64) {
	if p == nil {
		return
	}
	p.nodesTotal.Add(n)
}

// AddTuplesScanned records n base-table tuples read by a full scan.
func (p *Progress) AddTuplesScanned(n int64) {
	if p == nil {
		return
	}
	p.tuplesScanned.Add(n)
}

// AddTableScans records n full scans of the base table.
func (p *Progress) AddTableScans(n int64) {
	if p == nil {
		return
	}
	p.tableScans.Add(n)
}

// AddRollups records n frequency sets derived from other frequency sets.
func (p *Progress) AddRollups(n int64) {
	if p == nil {
		return
	}
	p.rollups.Add(n)
}

// ProgressSnapshot is one consistent-enough read of the counters (each
// field is read atomically; the set is not a transaction).
type ProgressSnapshot struct {
	Phase         string
	NodesVisited  int64
	NodesTotal    int64
	TuplesScanned int64
	TableScans    int64
	Rollups       int64
}

// Snapshot reads every counter. The zero snapshot is returned on nil.
func (p *Progress) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	return ProgressSnapshot{
		Phase:         p.Phase(),
		NodesVisited:  p.nodesVisited.Load(),
		NodesTotal:    p.nodesTotal.Load(),
		TuplesScanned: p.tuplesScanned.Load(),
		TableScans:    p.tableScans.Load(),
		Rollups:       p.rollups.Load(),
	}
}

// RegisterProgress exposes a progress handle's counters as live gauges on
// the registry (evaluated at scrape time), so `curl :PORT/metrics` during
// a run shows the search advancing. No-op when either side is nil.
func RegisterProgress(r *Registry, p *Progress) {
	if r == nil || p == nil {
		return
	}
	r.GaugeFunc("incognito_progress_nodes_visited", "Generalization nodes processed so far (checked or marked).",
		func() float64 { return float64(p.Snapshot().NodesVisited) })
	r.GaugeFunc("incognito_progress_nodes_total", "Candidate nodes generated so far (the completion denominator).",
		func() float64 { return float64(p.Snapshot().NodesTotal) })
	r.GaugeFunc("incognito_progress_tuples_scanned", "Base-table tuples read by full scans so far.",
		func() float64 { return float64(p.Snapshot().TuplesScanned) })
	r.GaugeFunc("incognito_progress_table_scans", "Full base-table scans so far.",
		func() float64 { return float64(p.Snapshot().TableScans) })
	r.GaugeFunc("incognito_progress_rollups", "Frequency sets derived by rollup so far.",
		func() float64 { return float64(p.Snapshot().Rollups) })
}
