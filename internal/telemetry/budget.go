package telemetry

import "incognito/internal/resilience"

// RegisterBudget exposes a memory accountant's state as live gauges on the
// registry, so a scrape during a budgeted run shows how close the search is
// to its limit and which degradation steps have fired. No-op when either
// side is nil (an unbudgeted run registers nothing).
func RegisterBudget(r *Registry, a *resilience.Accountant) {
	if r == nil || a == nil {
		return
	}
	r.GaugeFunc("incognito_mem_budget_bytes", "Configured soft memory budget for long-lived frequency sets.",
		func() float64 { return float64(a.Budget()) })
	r.GaugeFunc("incognito_mem_used_bytes", "Estimated bytes currently held in long-lived frequency sets.",
		func() float64 { return float64(a.Used()) })
	const degradationHelp = "Degradation-ladder steps taken under memory pressure, by action."
	r.GaugeFunc("incognito_degradation_events", degradationHelp,
		func() float64 { return float64(a.DenseFallbacks()) }, "action", "dense_fallback")
	r.GaugeFunc("incognito_degradation_events", degradationHelp,
		func() float64 { return float64(a.Sheds()) }, "action", "materialization_shed")
	r.GaugeFunc("incognito_degradation_events", degradationHelp,
		func() float64 {
			if a.Aborted() {
				return 1
			}
			return 0
		}, "action", "abort")
}

// RegisterCheckpoints exposes a checkpointer's save counters as live
// gauges: how many snapshots have been written and how large the last one
// was. No-op when either side is nil.
func RegisterCheckpoints(r *Registry, c *resilience.Checkpointer) {
	if r == nil || c == nil {
		return
	}
	r.GaugeFunc("incognito_checkpoint_saves", "Snapshots written by the run's checkpointer.",
		func() float64 { return float64(c.Saves()) })
	r.GaugeFunc("incognito_checkpoint_last_size_bytes", "Size of the most recently written snapshot file.",
		func() float64 { return float64(c.LastSize()) })
}
