package telemetry

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenRegistry builds a deterministic registry exercising every metric
// kind, labels, escaping, and histogram expansion — the fixture behind the
// golden test.
func goldenRegistry() *Registry {
	r := NewRegistry()
	r.Counter("incognito_nodes_checked_total", "Generalization nodes whose k-anonymity was tested explicitly.").Add(42)
	r.Counter("incognito_cells_total", "Cells run, by algorithm.", "algorithm", "Basic Incognito").Add(3)
	r.Counter("incognito_cells_total", "Cells run, by algorithm.", "algorithm", "Cube Incognito").Add(1)
	r.Gauge("incognito_goroutines", "Current number of goroutines.").Set(7)
	r.GaugeFunc("incognito_progress_nodes_visited", "Nodes processed so far.", func() float64 { return 19 })
	h := r.Histogram("incognito_freqset_groups", "Groups per materialized frequency set.", []float64{1, 10, 100})
	for _, v := range []float64{1, 4, 6, 50, 200} {
		h.Observe(v)
	}
	r.Histogram("incognito_phase_seconds", "Phase durations.", []float64{0.001, 0.01}, "phase", `odd"label\value`).Observe(0.005)
	return r
}

func TestWritePrometheusGolden(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "prometheus.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("exposition differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
	// Determinism: a second render must be byte-identical.
	var sb2 strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != got {
		t.Error("two renders of identical registries differ")
	}
}

func TestWritePrometheusValid(t *testing.T) {
	var sb strings.Builder
	if err := goldenRegistry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	families := parsePrometheus(t, sb.String())
	if families["incognito_nodes_checked_total"].kind != "counter" {
		t.Error("missing counter family")
	}
	if n := len(families["incognito_cells_total"].samples); n != 2 {
		t.Errorf("labeled counter has %d samples, want 2", n)
	}
	hist := families["incognito_freqset_groups"]
	if hist.kind != "histogram" {
		t.Fatal("missing histogram family")
	}
	// Cumulative buckets: le=1 → 1, le=10 → 3, le=100 → 4, +Inf → 5 = _count.
	wantBuckets := map[string]float64{"1": 1, "10": 3, "100": 4, "+Inf": 5}
	var count, sum float64
	for _, s := range hist.samples {
		switch s.suffix {
		case "_bucket":
			le := s.labels["le"]
			if want, ok := wantBuckets[le]; !ok || s.value != want {
				t.Errorf("bucket le=%q = %v, want %v", le, s.value, want)
			}
		case "_count":
			count = s.value
		case "_sum":
			sum = s.value
		}
	}
	if count != 5 || sum != 1+4+6+50+200 {
		t.Errorf("histogram count=%v sum=%v", count, sum)
	}
}

// promFamily is one parsed metric family: its declared type and samples.
type promFamily struct {
	kind    string
	samples []promSample
}

// promSample is one exposition line: the family name suffix (_bucket,
// _sum, _count, or ""), parsed labels, and the value.
type promSample struct {
	suffix string
	labels map[string]string
	value  float64
}

var (
	promHelpRe   = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	promTypeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
	promSampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)$`)
	promLabelRe  = regexp.MustCompile(`^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$`)
)

// parsePrometheus validates text-format 0.0.4 output line by line — every
// sample must follow a TYPE declaration for its family, carry well-formed
// labels, and parse as a float — and returns the families. It is the
// in-repo stand-in for a real Prometheus scraper's parser.
func parsePrometheus(t *testing.T, text string) map[string]*promFamily {
	t.Helper()
	families := make(map[string]*promFamily)
	helped := make(map[string]bool)
	var current string
	for ln, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if m := promHelpRe.FindStringSubmatch(line); m != nil {
			if helped[m[1]] {
				t.Errorf("line %d: duplicate HELP for %s", ln+1, m[1])
			}
			helped[m[1]] = true
			continue
		}
		if m := promTypeRe.FindStringSubmatch(line); m != nil {
			if _, dup := families[m[1]]; dup {
				t.Errorf("line %d: duplicate TYPE for %s", ln+1, m[1])
			}
			families[m[1]] = &promFamily{kind: m[2]}
			current = m[1]
			continue
		}
		m := promSampleRe.FindStringSubmatch(line)
		if m == nil {
			t.Errorf("line %d: malformed sample %q", ln+1, line)
			continue
		}
		name, labelText, valueText := m[1], m[3], m[4]
		base, suffix := name, ""
		for _, sfx := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, sfx)
			if trimmed != name {
				if f, ok := families[trimmed]; ok && f.kind == "histogram" {
					base, suffix = trimmed, sfx
				}
				break
			}
		}
		f := families[base]
		if f == nil {
			t.Errorf("line %d: sample %q precedes its TYPE declaration", ln+1, name)
			continue
		}
		if base != current {
			t.Errorf("line %d: sample for %q interleaved into family %q", ln+1, base, current)
		}
		labels := make(map[string]string)
		if labelText != "" {
			for _, pair := range splitLabelPairs(labelText) {
				lm := promLabelRe.FindStringSubmatch(pair)
				if lm == nil {
					t.Errorf("line %d: malformed label %q", ln+1, pair)
					continue
				}
				labels[lm[1]] = lm[2]
			}
		}
		v, err := strconv.ParseFloat(valueText, 64)
		if err != nil {
			t.Errorf("line %d: bad value %q: %v", ln+1, valueText, err)
			continue
		}
		f.samples = append(f.samples, promSample{suffix: suffix, labels: labels, value: v})
	}
	for name, f := range families {
		if !helped[name] {
			t.Errorf("family %s has TYPE but no HELP", name)
		}
		if len(f.samples) == 0 {
			t.Errorf("family %s has no samples", name)
		}
	}
	return families
}

// splitLabelPairs splits `a="1",b="2"` on commas outside quotes.
func splitLabelPairs(s string) []string {
	var out []string
	var b strings.Builder
	inQuotes, escaped := false, false
	for _, r := range s {
		switch {
		case escaped:
			escaped = false
		case r == '\\':
			escaped = true
		case r == '"':
			inQuotes = !inQuotes
		case r == ',' && !inQuotes:
			out = append(out, b.String())
			b.Reset()
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}
