package telemetry

import (
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestServeMetricsDuringRun is the acceptance check behind "curl
// :PORT/metrics during a run returns valid Prometheus text": it scrapes
// repeatedly while a goroutine mutates the progress counters, parsing
// every response with the same validator as the golden test.
func TestServeMetricsDuringRun(t *testing.T) {
	reg := NewRegistry()
	p := NewProgress()
	RegisterProgress(reg, p)
	reg.Counter("incognito_nodes_checked_total", "help").Add(5)

	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				p.AddVisited(1)
				p.AddCandidates(2)
			}
		}
	}()

	var lastVisited float64
	for i := 0; i < 5; i++ {
		resp, err := http.Get("http://" + srv.Addr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("scrape %d: status %d", i, resp.StatusCode)
		}
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
			t.Fatalf("scrape %d: Content-Type %q", i, ct)
		}
		families := parsePrometheus(t, string(body))
		g := families["incognito_progress_nodes_visited"]
		if g == nil || g.kind != "gauge" {
			t.Fatalf("scrape %d: progress gauge missing", i)
		}
		if v := g.samples[0].value; v < lastVisited {
			t.Fatalf("scrape %d: progress went backwards: %v < %v", i, v, lastVisited)
		} else {
			lastVisited = v
		}
		time.Sleep(time.Millisecond)
	}
	close(done)
	wg.Wait()
	if lastVisited == 0 {
		t.Fatal("live scrapes never observed progress")
	}
}

func TestServePprofEndpoints(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, path := range []string{"/", "/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/heap", "/debug/pprof/goroutine"} {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
	// A nil registry serves a valid empty exposition.
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || len(body) != 0 {
		t.Errorf("nil-registry /metrics: status %d body %q", resp.StatusCode, body)
	}
	// Unknown paths 404 rather than serving the index.
	resp, err = http.Get("http://" + srv.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}

func TestServeBadAddress(t *testing.T) {
	if _, err := Serve("127.0.0.1:notaport", nil); err == nil {
		t.Fatal("bad address did not error")
	}
}
