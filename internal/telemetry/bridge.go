package telemetry

import (
	"incognito/internal/sched"
	"incognito/internal/trace"
)

// This file bridges the run-scoped observability (internal/trace spans,
// hot-path distribution observations) into the process-scoped registry.

// RunMetrics is the hot-path distribution hook threaded through
// core.Input: pre-resolved histogram handles so instrumented code pays one
// mutex-guarded observe, never a registry lookup. A nil *RunMetrics (the
// default) disables every observation at zero cost, like a nil tracer.
type RunMetrics struct {
	freqSetGroups *Histogram
	rollupFanIn   *Histogram
	sched         *sched.Metrics
}

// NewRunMetrics resolves the run-metric handles against the registry.
// Nil-safe: a nil registry yields a nil (disabled) RunMetrics.
func (r *Registry) NewRunMetrics() *RunMetrics {
	if r == nil {
		return nil
	}
	m := &RunMetrics{
		freqSetGroups: r.Histogram("incognito_freqset_groups",
			"Groups per materialized frequency set (scan, rollup, or cube margin).", SizeBuckets),
		rollupFanIn: r.Histogram("incognito_rollup_fanin",
			"Source groups folded into each output group by a rollup or cube margin.", FanInBuckets),
		sched: &sched.Metrics{},
	}
	registerScheduler(r, m.sched)
	return m
}

// registerScheduler exposes a scheduler-metrics handle as export-time
// gauges: its values live in the scheduler's atomics, so the hot paths
// never touch the registry (the GaugeFunc bridge, like live Progress).
func registerScheduler(r *Registry, m *sched.Metrics) {
	r.GaugeFunc("incognito_sched_steals_total",
		"Tasks taken from a sibling worker's deque by the work-stealing scheduler.",
		func() float64 { return float64(m.Steals()) })
	r.GaugeFunc("incognito_sched_tasks_total",
		"Tasks executed by the work-stealing scheduler.",
		func() float64 { return float64(m.Tasks()) })
	r.GaugeFunc("incognito_sched_queue_depth",
		"Tasks currently queued across all worker deques.",
		func() float64 { return float64(m.QueueDepth()) })
	r.GaugeFunc("incognito_sched_queue_depth_peak",
		"High-water mark of tasks queued across all worker deques.",
		func() float64 { return float64(m.QueueDepthPeak()) })
	r.GaugeFunc("incognito_sched_workers",
		"Worker count of the most recent parallel phase.",
		func() float64 { return float64(m.Workers()) })
	r.GaugeFunc("incognito_sched_worker_utilization",
		"Fraction of scheduled worker time spent inside tasks (Σ busy / Σ workers × wall).",
		m.Utilization)
	r.GaugeFunc("incognito_sched_phases_total",
		"Scheduler phases by dispatch mode: parallel spawned workers, inline ran on the calling goroutine (single worker, single task, or below the task-size floor).",
		func() float64 { return float64(m.ParallelPhases()) }, "mode", "parallel")
	r.GaugeFunc("incognito_sched_phases_total",
		"Scheduler phases by dispatch mode: parallel spawned workers, inline ran on the calling goroutine (single worker, single task, or below the task-size floor).",
		func() float64 { return float64(m.InlinePhases()) }, "mode", "inline")
}

// Sched returns the run's scheduler-metrics handle (nil when metrics are
// disabled — the scheduler itself treats a nil handle as disabled).
func (m *RunMetrics) Sched() *sched.Metrics {
	if m == nil {
		return nil
	}
	return m.sched
}

// ObserveFreqSetSize records the group count of a materialized frequency
// set.
func (m *RunMetrics) ObserveFreqSetSize(groups int) {
	if m == nil {
		return
	}
	m.freqSetGroups.Observe(float64(groups))
}

// ObserveRollup records one rollup's fan-in: how many source groups were
// folded into each output group on average.
func (m *RunMetrics) ObserveRollup(fromGroups, toGroups int) {
	if m == nil || toGroups <= 0 {
		return
	}
	m.rollupFanIn.Observe(float64(fromGroups) / float64(toGroups))
}

// counterHelp documents the known trace counters in the exposition; an
// unknown counter gets a generic line rather than being dropped.
var counterHelp = map[string]string{
	"nodes_checked":  "Generalization nodes whose k-anonymity was tested explicitly.",
	"nodes_marked":   "Nodes skipped via the generalization property.",
	"candidates":     "Candidate nodes across all iterations.",
	"table_scans":    "Frequency sets built by scanning the base table.",
	"rollups":        "Frequency sets derived from other frequency sets.",
	"cube_freq_sets": "Zero-generalization frequency sets materialized by the cube.",
}

// RecordTrace folds an exported trace document into the registry: every
// span's duration feeds the phase-latency histogram (labeled by span
// name), and the document's aggregate counters feed monotonic counters
// named incognito_<counter>_total. Call it once per completed run; it is
// how the span tree of internal/trace becomes Prometheus-readable without
// the hot paths ever touching the registry. No-op when either side is nil.
func RecordTrace(r *Registry, doc *trace.Document) {
	if r == nil || doc == nil {
		return
	}
	doc.Walk(func(_ []string, s *trace.SpanDoc) {
		r.Histogram("incognito_phase_seconds", "Wall-clock duration of pipeline phase spans, by span name.",
			LatencyBuckets, "phase", s.Name).Observe(float64(s.DurUS) / 1e6)
	})
	for _, name := range doc.CounterNames() {
		help, ok := counterHelp[name]
		if !ok {
			help = "Trace counter " + name + "."
		}
		r.Counter("incognito_"+name+"_total", help).Add(doc.SumCounter(name))
	}
}
