package telemetry

import (
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "help")
	c.Add(3)
	c.Inc()
	c.Add(-5) // ignored: counters only go up
	c.Add(0)  // ignored
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	// Re-registration returns the same series.
	if again := r.Counter("test_total", "help"); again.Value() != 4 {
		t.Fatalf("re-registered counter = %d, want 4", again.Value())
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "help")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.Set(-1)
	if got := g.Value(); got != -1 {
		t.Fatalf("gauge = %v, want -1", got)
	}
}

func TestHistogramBucketing(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist", "help", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 10, 99, 1000} {
		h.Observe(v)
	}
	s := h.s
	s.hmu.Lock()
	defer s.hmu.Unlock()
	// le="1" gets 0.5 and 1 (le is inclusive), le="10" gets 5 and 10,
	// le="100" gets 99, +Inf gets 1000.
	want := []uint64{2, 2, 1, 1}
	for i, w := range want {
		if s.counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.counts[i], w)
		}
	}
	if s.count != 6 {
		t.Errorf("count = %d, want 6", s.count)
	}
	if s.sum != 0.5+1+5+10+99+1000 {
		t.Errorf("sum = %v", s.sum)
	}
}

func TestLabelsCanonicalOrder(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_labeled", "help", "b", "2", "a", "1")
	b := r.Counter("test_labeled", "help", "a", "1", "b", "2")
	a.Inc()
	if got := b.Value(); got != 1 {
		t.Fatalf("label order created distinct series: %d, want 1", got)
	}
	if a.s.labels != `a="1",b="2"` {
		t.Fatalf("rendered labels = %q", a.s.labels)
	}
}

func TestLabelValueEscaping(t *testing.T) {
	got := renderLabels([]string{"k", "a\\b\"c\nd"})
	want := `k="a\\b\"c\nd"`
	if got != want {
		t.Fatalf("escaped labels = %q, want %q", got, want)
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_conflict", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("test_conflict", "help")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "1abc", "has space", "bad-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			r.Counter(name, "help")
		}()
	}
}

func TestNilRegistryHandles(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("x", "h")
	g := r.Gauge("x", "h")
	h := r.Histogram("x", "h", SizeBuckets)
	r.GaugeFunc("x", "h", func() float64 { return 1 })
	c.Add(1)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil handles returned non-zero values")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition = %q, err %v", sb.String(), err)
	}
	if m := r.NewRunMetrics(); m != nil {
		t.Fatal("nil registry produced a non-nil RunMetrics")
	}
}

func TestNilHandleAllocFree(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		g.Set(1)
		h.Observe(1)
	}); n != 0 {
		t.Fatalf("nil instrument methods allocated %v per run", n)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("test_conc_total", "help")
			h := r.Histogram("test_conc_hist", "help", SizeBuckets, "worker", "shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("test_conc_total", "help").Value(); got != 8000 {
		t.Fatalf("concurrent counter = %d, want 8000", got)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `test_conc_hist_count{worker="shared"} 8000`) {
		t.Fatalf("histogram count missing from exposition:\n%s", sb.String())
	}
}
