package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"incognito/internal/trace"
)

func TestNewLoggerFormats(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger(&sb, "json", true)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", 1)
	var ev map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &ev); err != nil {
		t.Fatalf("json log line is not JSON: %v (%q)", err, sb.String())
	}
	if ev["msg"] != "hello" || ev["k"] != float64(1) {
		t.Fatalf("json event = %v", ev)
	}

	sb.Reset()
	log, err = NewLogger(&sb, "text", false)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("suppressed") // Info below Warn when not verbose
	if sb.Len() != 0 {
		t.Fatalf("non-verbose logger emitted Info: %q", sb.String())
	}
	log.Warn("kept")
	if !strings.Contains(sb.String(), "msg=kept") {
		t.Fatalf("text log = %q", sb.String())
	}

	if _, err := NewLogger(&sb, "xml", false); err == nil {
		t.Fatal("unknown format did not error")
	}
	if _, err := NewLogger(&sb, "", true); err != nil {
		t.Fatalf("empty format (default text) errored: %v", err)
	}
}

func TestStartReporterEmitsDone(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger(&sb, "json", true)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgress()
	p.SetPhase("search")
	p.AddCandidates(10)
	p.AddVisited(4)
	stop := StartReporter(log, p, time.Hour) // ticker never fires; done event only
	stop()
	stop() // idempotent
	var ev map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &ev); err != nil {
		t.Fatalf("done event not JSON: %v (%q)", err, sb.String())
	}
	if ev["msg"] != "done" || ev["phase"] != "search" ||
		ev["nodes_visited"] != float64(4) || ev["nodes_total"] != float64(10) || ev["pct"] != "40.0" {
		t.Fatalf("done event = %v", ev)
	}
	if _, hasETA := ev["eta"]; hasETA {
		t.Fatal("done event carries an eta")
	}
}

func TestStartReporterPeriodic(t *testing.T) {
	var sb strings.Builder
	log, err := NewLogger(&sb, "json", true)
	if err != nil {
		t.Fatal(err)
	}
	p := NewProgress()
	p.AddCandidates(100)
	p.AddVisited(50)
	stop := StartReporter(log, p, 5*time.Millisecond)
	time.Sleep(30 * time.Millisecond)
	stop()
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("reporter emitted %d events, want >= 2 (progress + done)", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["msg"] != "progress" {
		t.Fatalf("first event = %v", first)
	}
	if _, hasETA := first["eta"]; !hasETA {
		t.Fatal("progress event lacks an eta")
	}
}

func TestStartReporterNil(t *testing.T) {
	StartReporter(nil, NewProgress(), time.Millisecond)()
	log, _ := NewLogger(&strings.Builder{}, "text", true)
	StartReporter(log, nil, time.Millisecond)()
}

// TestRecordTrace closes the loop from span tree to registry: phase
// histograms by span name and counter totals.
func TestRecordTrace(t *testing.T) {
	tr := trace.New()
	sp := tr.Start("search")
	sp.Add("nodes_checked", 7)
	child := sp.Start("scan")
	child.End()
	sp.End()

	reg := NewRegistry()
	RecordTrace(reg, tr.Export())
	if v := reg.Counter("incognito_nodes_checked_total", "").Value(); v != 7 {
		t.Errorf("recorded counter = %d, want 7", v)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{`incognito_phase_seconds_count{phase="search"} 1`, `incognito_phase_seconds_count{phase="scan"} 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	RecordTrace(nil, tr.Export())
	RecordTrace(reg, nil) // no-ops
}
