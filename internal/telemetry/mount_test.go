package telemetry

import (
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestMountOnFreshMux: Mount must make a bare mux serve the whole
// telemetry surface and report exactly what it registered — the contract
// the incognitod endpoint index is generated from.
func TestMountOnFreshMux(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("incognito_mount_test_total", "Mount test counter.").Add(7)
	mux := http.NewServeMux()
	patterns := Mount(mux, reg)

	want := []string{
		"/metrics", "/debug/pprof/", "/debug/pprof/cmdline",
		"/debug/pprof/profile", "/debug/pprof/symbol", "/debug/pprof/trace",
	}
	if len(patterns) != len(want) {
		t.Fatalf("Mount returned %v, want %v", patterns, want)
	}
	for i, p := range want {
		if patterns[i] != p {
			t.Errorf("pattern[%d] = %q, want %q", i, patterns[i], p)
		}
	}

	ts := httptest.NewServer(mux)
	defer ts.Close()
	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "incognito_mount_test_total 7") {
		t.Errorf("metrics = %d:\n%s", code, body)
	}
	// The cheap pprof endpoints must answer; profile/trace block for their
	// sampling window, so registration coverage comes from the index page.
	code, body = get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index = %d:\n%s", code, body)
	}
	if code, _ = get("/debug/pprof/cmdline"); code != http.StatusOK {
		t.Errorf("pprof cmdline = %d", code)
	}
	if code, _ = get("/debug/pprof/symbol"); code != http.StatusOK {
		t.Errorf("pprof symbol = %d", code)
	}
}

// TestMountNilRegistry: /metrics on a nil registry serves an empty
// exposition rather than panicking.
func TestMountNilRegistry(t *testing.T) {
	mux := http.NewServeMux()
	Mount(mux, nil)
	ts := httptest.NewServer(mux)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("metrics with nil registry = %d", resp.StatusCode)
	}
}

// waitGoroutines polls until the goroutine count drops back to the
// baseline (other tests' servers may be winding down concurrently, so a
// strict equality would flake; at-most-baseline is the leak check).
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Errorf("goroutines = %d after stop, baseline %d — sampler/reporter leaked", runtime.NumGoroutine(), baseline)
}

func TestSamplerStopReleasesGoroutine(t *testing.T) {
	baseline := runtime.NumGoroutine()
	stop := StartSampler(NewRegistry(), time.Millisecond)
	time.Sleep(5 * time.Millisecond) // let it tick at least once
	stop()
	stop() // idempotent
	waitGoroutines(t, baseline)
}

func TestReporterStopReleasesGoroutine(t *testing.T) {
	logger, err := NewLogger(io.Discard, "text", true)
	if err != nil {
		t.Fatal(err)
	}
	baseline := runtime.NumGoroutine()
	stop := StartReporter(logger, NewProgress(), time.Millisecond)
	time.Sleep(5 * time.Millisecond)
	stop()
	stop() // idempotent
	waitGoroutines(t, baseline)
}
