package telemetry

import (
	"testing"
	"time"
)

func TestProgressSnapshot(t *testing.T) {
	p := NewProgress()
	p.SetPhase("search")
	p.AddVisited(3)
	p.AddCandidates(10)
	p.AddTuplesScanned(600)
	p.AddTableScans(2)
	p.AddRollups(4)
	s := p.Snapshot()
	want := ProgressSnapshot{Phase: "search", NodesVisited: 3, NodesTotal: 10, TuplesScanned: 600, TableScans: 2, Rollups: 4}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
}

func TestProgressNil(t *testing.T) {
	var p *Progress
	p.SetPhase("x")
	p.AddVisited(1)
	p.AddCandidates(1)
	p.AddTuplesScanned(1)
	p.AddTableScans(1)
	p.AddRollups(1)
	if p.Phase() != "" {
		t.Fatal("nil phase non-empty")
	}
	if s := p.Snapshot(); s != (ProgressSnapshot{}) {
		t.Fatalf("nil snapshot = %+v", s)
	}
}

// TestProgressAllocFree pins the tentpole's hot-path contract: the Add
// methods are allocation-free on BOTH the nil (disabled) and the enabled
// handle, and SetPhase is allocation-free when disabled.
func TestProgressAllocFree(t *testing.T) {
	var disabled *Progress
	if n := testing.AllocsPerRun(200, func() {
		disabled.SetPhase("phase")
		disabled.AddVisited(1)
		disabled.AddCandidates(1)
		disabled.AddTuplesScanned(1)
		disabled.AddTableScans(1)
		disabled.AddRollups(1)
	}); n != 0 {
		t.Fatalf("disabled progress allocated %v per run", n)
	}
	enabled := NewProgress()
	if n := testing.AllocsPerRun(200, func() {
		enabled.AddVisited(1)
		enabled.AddCandidates(1)
		enabled.AddTuplesScanned(1)
		enabled.AddTableScans(1)
		enabled.AddRollups(1)
	}); n != 0 {
		t.Fatalf("enabled progress adders allocated %v per run", n)
	}
}

func TestRegisterProgressNil(t *testing.T) {
	RegisterProgress(nil, NewProgress())
	RegisterProgress(NewRegistry(), nil)
	RegisterProgress(nil, nil) // all no-ops; just must not panic
}

func TestRunMetricsObservations(t *testing.T) {
	reg := NewRegistry()
	m := reg.NewRunMetrics()
	m.ObserveFreqSetSize(50)
	m.ObserveRollup(100, 10) // fan-in 10
	m.ObserveRollup(100, 0)  // ignored: empty output
	if c := sampleCount(m.freqSetGroups.s); c != 1 {
		t.Errorf("freqset observations = %d, want 1", c)
	}
	if c := sampleCount(m.rollupFanIn.s); c != 1 {
		t.Errorf("fan-in observations = %d, want 1", c)
	}
	var disabled *RunMetrics
	disabled.ObserveFreqSetSize(1)
	disabled.ObserveRollup(1, 1)
}

// sampleCount reads a series' histogram sample count under its lock.
func sampleCount(s *series) uint64 {
	s.hmu.Lock()
	defer s.hmu.Unlock()
	return s.count
}

func TestSampler(t *testing.T) {
	reg := NewRegistry()
	stop := StartSampler(reg, 10*time.Millisecond)
	time.Sleep(25 * time.Millisecond)
	stop()
	stop() // idempotent
	if v := reg.Gauge("incognito_goroutines", "Current number of goroutines.").Value(); v < 1 {
		t.Errorf("goroutines gauge = %v, want >= 1", v)
	}
	if v := reg.Gauge("incognito_heap_alloc_bytes", "Bytes of allocated heap objects (runtime.MemStats.HeapAlloc).").Value(); v <= 0 {
		t.Errorf("heap gauge = %v, want > 0", v)
	}
	StartSampler(nil, time.Millisecond)() // nil registry: no-op stop
}

func TestRunMetricsSchedHandle(t *testing.T) {
	var nilRM *RunMetrics
	if nilRM.Sched() != nil {
		t.Fatal("nil RunMetrics must hand out a nil scheduler handle")
	}
	rm := NewRegistry().NewRunMetrics()
	if rm.Sched() == nil {
		t.Fatal("live RunMetrics must hand out a scheduler-metrics handle")
	}
}
