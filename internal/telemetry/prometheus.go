package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// string, a # HELP and # TYPE line per family, histograms expanded into
// cumulative _bucket/_sum/_count series. No timestamps are emitted, so for
// a given registry state the output is byte-for-byte deterministic — the
// property the golden-file test pins. On a nil registry it writes nothing
// (an empty exposition is valid).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	fams := make([]*family, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, escapeHelp(f.help), f.name, f.kind); err != nil {
		return err
	}
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s := f.series[k]
		var err error
		switch f.kind {
		case kindCounter:
			err = writeSample(w, f.name, s.labels, "", formatInt(s.counter.Load()))
		case kindGauge:
			v := (&Gauge{s: s}).Value()
			if s.fn != nil {
				v = s.fn()
			}
			err = writeSample(w, f.name, s.labels, "", formatFloat(v))
		case kindHistogram:
			err = s.writeHistogram(w, f)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative bucket counts
// with the canonical le label, then _sum and _count.
func (s *series) writeHistogram(w *bufio.Writer, f *family) error {
	s.hmu.Lock()
	counts := append([]uint64(nil), s.counts...)
	sum, count := s.sum, s.count
	s.hmu.Unlock()

	var cum uint64
	for i, bound := range f.buckets {
		cum += counts[i]
		if err := writeSample(w, f.name+"_bucket", s.labels, `le="`+formatFloat(bound)+`"`, formatInt(int64(cum))); err != nil {
			return err
		}
	}
	cum += counts[len(f.buckets)]
	if err := writeSample(w, f.name+"_bucket", s.labels, `le="+Inf"`, formatInt(int64(cum))); err != nil {
		return err
	}
	if err := writeSample(w, f.name+"_sum", s.labels, "", formatFloat(sum)); err != nil {
		return err
	}
	return writeSample(w, f.name+"_count", s.labels, "", formatInt(int64(count)))
}

// writeSample renders one exposition line, merging the series labels with
// an optional extra label (the histogram le).
func writeSample(w *bufio.Writer, name, labels, extra, value string) error {
	all := labels
	switch {
	case all == "":
		all = extra
	case extra != "":
		all += "," + extra
	}
	if all != "" {
		all = "{" + all + "}"
	}
	_, err := fmt.Fprintf(w, "%s%s %s\n", name, all, value)
	return err
}

// escapeHelp applies the text-format escapes for HELP text: backslash and
// newline (quotes are legal there).
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

// formatFloat renders a float the way Prometheus clients do: shortest
// round-trip representation, integral values without an exponent where
// possible.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
