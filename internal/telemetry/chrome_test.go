package telemetry

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"incognito/internal/trace"
)

// goldenDocument hand-builds a trace document shaped like a real run: a
// root span with two concurrent family searches (overlapping intervals
// that must land on separate lanes) and a nested child that must share its
// parent's lane.
func goldenDocument() *trace.Document {
	return &trace.Document{
		Version:  1,
		Attrs:    map[string]any{"algorithm": "Basic Incognito", "k": 2},
		Counters: map[string]int64{"nodes_checked": 9, "table_scans": 4},
		Spans: []*trace.SpanDoc{
			{
				Name: "search", StartUS: 0, DurUS: 1000,
				Attrs: map[string]any{"algorithm": "Basic Incognito"},
				Children: []*trace.SpanDoc{
					{
						Name: "family", StartUS: 100, DurUS: 400,
						Counters: map[string]int64{"nodes_checked": 5},
						Children: []*trace.SpanDoc{
							{Name: "scan", StartUS: 150, DurUS: 100},
						},
					},
					{
						Name: "family", StartUS: 120, DurUS: 420,
						Counters: map[string]int64{"nodes_checked": 4},
					},
				},
			},
		},
	}
}

func TestWriteChromeTraceGolden(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(goldenDocument(), &sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	path := filepath.Join("testdata", "chrome.golden")
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if got != string(want) {
		t.Errorf("chrome trace differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// chromeEvent is the schema Perfetto / chrome://tracing requires of the
// JSON Object Format: the fields every event must carry to load.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   *int64         `json:"ts"`
	Dur  *int64         `json:"dur"`
	PID  *int           `json:"pid"`
	TID  *int           `json:"tid"`
	Args map[string]any `json:"args"`
}

func decodeChrome(t *testing.T, data []byte) (events []chromeEvent, other map[string]any) {
	t.Helper()
	var doc struct {
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" && doc.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want ms or ns", doc.DisplayTimeUnit)
	}
	return doc.TraceEvents, doc.OtherData
}

// validateChromeEvents checks what the viewers actually require: known
// phase codes, mandatory fields per phase, non-negative times, and proper
// nesting of complete events sharing a lane.
func validateChromeEvents(t *testing.T, events []chromeEvent) {
	t.Helper()
	type iv struct{ start, end int64 }
	byLane := make(map[int][]iv)
	namedLanes := make(map[int]bool)
	for i, ev := range events {
		if ev.Name == "" {
			t.Errorf("event %d has no name", i)
		}
		switch ev.Ph {
		case "M":
			if ev.Args["name"] == nil {
				t.Errorf("metadata event %d lacks args.name", i)
			}
			if ev.TID != nil && ev.Name == "thread_name" {
				namedLanes[*ev.TID] = true
			}
		case "X":
			if ev.TS == nil || ev.Dur == nil || ev.PID == nil || ev.TID == nil {
				t.Errorf("complete event %d (%s) missing ts/dur/pid/tid", i, ev.Name)
				continue
			}
			if *ev.TS < 0 || *ev.Dur < 0 {
				t.Errorf("complete event %d (%s) has negative time ts=%d dur=%d", i, ev.Name, *ev.TS, *ev.Dur)
			}
			byLane[*ev.TID] = append(byLane[*ev.TID], iv{*ev.TS, *ev.TS + *ev.Dur})
		default:
			t.Errorf("event %d has unsupported phase %q", i, ev.Ph)
		}
	}
	for lane, ivs := range byLane {
		if !namedLanes[lane] {
			t.Errorf("lane %d has events but no thread_name metadata", lane)
		}
		sort.Slice(ivs, func(i, j int) bool {
			if ivs[i].start != ivs[j].start {
				return ivs[i].start < ivs[j].start
			}
			return ivs[i].end > ivs[j].end
		})
		var stack []iv
		for _, v := range ivs {
			for len(stack) > 0 && stack[len(stack)-1].end <= v.start {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 {
				top := stack[len(stack)-1]
				if !(top.start <= v.start && v.end <= top.end) {
					t.Errorf("lane %d: span [%d,%d) overlaps [%d,%d) without nesting", lane, v.start, v.end, top.start, top.end)
				}
			}
			stack = append(stack, v)
		}
	}
}

func TestWriteChromeTraceValid(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(goldenDocument(), &sb); err != nil {
		t.Fatal(err)
	}
	events, other := decodeChrome(t, []byte(sb.String()))
	validateChromeEvents(t, events)

	// The two concurrent families must be on different lanes; the nested
	// scan must share its parent's lane.
	lanes := make(map[string][]int)
	for _, ev := range events {
		if ev.Ph == "X" {
			lanes[ev.Name] = append(lanes[ev.Name], *ev.TID)
		}
	}
	if fams := lanes["family"]; len(fams) != 2 || fams[0] == fams[1] {
		t.Errorf("concurrent families got lanes %v, want two distinct", fams)
	}
	if len(lanes["scan"]) != 1 || len(lanes["family"]) != 2 || lanes["scan"][0] != lanes["family"][0] {
		t.Errorf("nested scan on lane %v, want its parent family's lane %v", lanes["scan"], lanes["family"])
	}
	if other["counter_nodes_checked"] != float64(9) {
		t.Errorf("otherData counters = %v", other)
	}
}

func TestWriteChromeTraceNilDocument(t *testing.T) {
	var sb strings.Builder
	if err := WriteChromeTrace(nil, &sb); err != nil {
		t.Fatal(err)
	}
	events, _ := decodeChrome(t, []byte(sb.String()))
	if len(events) != 0 {
		t.Fatalf("nil document produced %d events", len(events))
	}
}

// TestChromeTraceFromLiveRun converts a real traced run, end to end: the
// schema validation here is what "loads in Perfetto" means in CI.
func TestChromeTraceFromLiveRun(t *testing.T) {
	tr := trace.New()
	root := tr.Start("cell")
	child := root.Start("search")
	child.Add("nodes_checked", 3)
	child.End()
	root.End()
	var sb strings.Builder
	if err := WriteChromeTrace(tr.Export(), &sb); err != nil {
		t.Fatal(err)
	}
	events, _ := decodeChrome(t, []byte(sb.String()))
	validateChromeEvents(t, events)
	var complete int
	for _, ev := range events {
		if ev.Ph == "X" {
			complete++
		}
	}
	if complete != 2 {
		t.Fatalf("live run produced %d complete events, want 2", complete)
	}
}
