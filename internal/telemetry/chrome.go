package telemetry

import (
	"encoding/json"
	"io"
	"sort"

	"incognito/internal/trace"
)

// This file converts an exported trace.Document into Chrome trace-event
// JSON (the "JSON Object Format" of the Trace Event spec), so any run
// recorded with -trace can be opened in Perfetto / chrome://tracing. Every
// span becomes one complete ("X") event with microsecond timestamps, and
// concurrent spans — the per-family searches of one iteration, the
// per-wave margin builds of the cube — are laid out on separate lanes
// (tids) so the UI shows them side by side instead of stacked garbage.

// chromeComplete is one "X" (complete) event: a named interval on a lane.
type chromeComplete struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeMeta is one "M" (metadata) event, used for process and lane names.
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// chromeDoc is the top-level JSON object. OtherData carries the trace
// document's attributes and aggregate counters for post-hoc inspection.
type chromeDoc struct {
	TraceEvents     []any          `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// WriteChromeTrace renders doc as Chrome trace-event JSON. Event order,
// lane assignment, and args key order are all deterministic for a given
// document (encoding/json sorts map keys), so goldens built from
// hand-constructed documents are stable. A nil document yields a valid
// empty trace.
func WriteChromeTrace(doc *trace.Document, w io.Writer) error {
	out := &chromeDoc{TraceEvents: []any{}, DisplayTimeUnit: "ms"}
	if doc != nil {
		out.OtherData = map[string]any{}
		for k, v := range doc.Attrs {
			out.OtherData[k] = v
		}
		for k, v := range doc.Counters {
			out.OtherData["counter_"+k] = v
		}
		if len(out.OtherData) == 0 {
			out.OtherData = nil
		}
		spans, lanes := layoutLanes(doc)
		out.TraceEvents = append(out.TraceEvents, chromeMeta{
			Name: "process_name", Ph: "M", PID: 1, TID: 0,
			Args: map[string]any{"name": "incognito"},
		})
		for tid := 0; tid < lanes; tid++ {
			out.TraceEvents = append(out.TraceEvents, chromeMeta{
				Name: "thread_name", Ph: "M", PID: 1, TID: tid,
				Args: map[string]any{"name": laneName(tid)},
			})
		}
		for _, p := range spans {
			ev := chromeComplete{Name: p.s.Name, Ph: "X", TS: p.s.StartUS, Dur: p.s.DurUS, PID: 1, TID: p.lane}
			if len(p.s.Attrs) > 0 || len(p.s.Counters) > 0 {
				ev.Args = make(map[string]any, len(p.s.Attrs)+len(p.s.Counters))
				for k, v := range p.s.Attrs {
					ev.Args[k] = v
				}
				for k, v := range p.s.Counters {
					ev.Args[k] = v
				}
			}
			out.TraceEvents = append(out.TraceEvents, ev)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

func laneName(tid int) string {
	if tid == 0 {
		return "main"
	}
	return "lane " + formatInt(int64(tid))
}

// placed is a span with its assigned lane.
type placed struct {
	s    *trace.SpanDoc
	lane int
}

// layoutLanes assigns each span a lane such that the spans of any one lane
// are properly nested — what the trace viewers require of complete events
// sharing a tid. Spans are processed in (start, widest-first) order; a
// span goes to the lowest lane whose innermost open interval fully
// contains it, or to a fresh lane when every existing lane's open interval
// merely overlaps it (concurrent families and waves land side by side).
func layoutLanes(doc *trace.Document) ([]placed, int) {
	var flat []*trace.SpanDoc
	doc.Walk(func(_ []string, s *trace.SpanDoc) { flat = append(flat, s) })
	// Stable-sort by start time, widest first on ties, so a parent always
	// precedes its children and the original depth-first order breaks the
	// remaining ties deterministically.
	sort.SliceStable(flat, func(i, j int) bool {
		if flat[i].StartUS != flat[j].StartUS {
			return flat[i].StartUS < flat[j].StartUS
		}
		return flat[i].DurUS > flat[j].DurUS
	})

	type interval struct{ start, end int64 }
	var lanes [][]interval // per lane: stack of open (containing) intervals
	out := make([]placed, 0, len(flat))
	for _, s := range flat {
		start, end := s.StartUS, s.StartUS+s.DurUS
		lane := -1
		for l := range lanes {
			stack := lanes[l]
			for len(stack) > 0 && stack[len(stack)-1].end <= start {
				stack = stack[:len(stack)-1] // closed before we start
			}
			if len(stack) == 0 || (stack[len(stack)-1].start <= start && end <= stack[len(stack)-1].end) {
				lanes[l] = append(stack, interval{start, end})
				lane = l
				break
			}
			lanes[l] = stack
		}
		if lane < 0 {
			lanes = append(lanes, []interval{{start, end}})
			lane = len(lanes) - 1
		}
		out = append(out, placed{s: s, lane: lane})
	}
	return out, len(lanes)
}
