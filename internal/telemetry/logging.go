package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"
)

// NewLogger builds the structured logger both CLIs share: format is "text"
// (the default when empty) for human-readable key=value lines or "json"
// for machine-readable events; verbose lifts the level from Warn to Info,
// which is what turns the periodic progress events on. Unknown formats are
// a usage error for the caller to report.
func NewLogger(w io.Writer, format string, verbose bool) (*slog.Logger, error) {
	level := slog.LevelWarn
	if verbose {
		level = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("telemetry: unknown log format %q (want text or json)", format)
}

// StartReporter begins periodic progress reporting: every interval
// (default one second when interval <= 0) it snapshots p and emits one
// Info-level "progress" event on log with the phase, the counters, the
// completion percentage, and an ETA extrapolated from the visited/total
// fraction. The returned stop function is idempotent; it halts the ticker
// and emits one final "done" event so even sub-interval runs log their
// totals. No-op (and stop trivially) when log or p is nil.
func StartReporter(log *slog.Logger, p *Progress, interval time.Duration) (stop func()) {
	if log == nil || p == nil {
		return func() {}
	}
	if interval <= 0 {
		interval = time.Second
	}
	start := time.Now()
	emit := func(msg string) {
		s := p.Snapshot()
		elapsed := time.Since(start)
		attrs := []slog.Attr{
			slog.String("phase", s.Phase),
			slog.Int64("nodes_visited", s.NodesVisited),
			slog.Int64("nodes_total", s.NodesTotal),
			slog.Int64("tuples_scanned", s.TuplesScanned),
			slog.Int64("table_scans", s.TableScans),
			slog.Int64("rollups", s.Rollups),
			slog.Duration("elapsed", elapsed.Round(time.Millisecond)),
		}
		if s.NodesTotal > 0 && s.NodesVisited > 0 && s.NodesVisited <= s.NodesTotal {
			frac := float64(s.NodesVisited) / float64(s.NodesTotal)
			attrs = append(attrs, slog.String("pct", fmt.Sprintf("%.1f", 100*frac)))
			if msg == "progress" {
				eta := time.Duration(float64(elapsed) * (1 - frac) / frac)
				attrs = append(attrs, slog.Duration("eta", eta.Round(time.Millisecond)))
			}
		}
		log.LogAttrs(context.Background(), slog.LevelInfo, msg, attrs...)
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				emit("progress")
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			wg.Wait()
			emit("done")
		})
	}
}
