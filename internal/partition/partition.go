// Package partition implements multi-process frequency-set counting: the
// base table's rows are split into contiguous ranges, one worker process
// per range counts its share of every requested frequency set locally,
// and the coordinator merges the partial sets additively. Counts are
// additive, so the merged set — and therefore every Solution and Stat
// derived from it — is bit-identical to a single-process scan.
//
// Only base-table scans cross process boundaries. Rollups, the candidate
// search, and all Stats accounting stay on the coordinator, which is what
// makes the split safe: the workers are pure functions from (dims,
// levels, row range) to a frequency set.
//
// The wire protocol is deliberately boring. Requests go down each
// worker's stdin as single JSON lines (they are tiny and debuggable);
// responses come back on stdout as a JSON header line carrying the
// payload length (or an error string) followed by that many bytes of the
// deterministic binary frequency-set encoding (relation.EncodeFreqSet —
// compact where volume actually is). Workers are the same executable
// re-exec'd with a hidden flag; they serve requests until stdin closes.
//
// # Supervision
//
// A pool built with a Spawner (SpawnSelf and friends) survives its
// workers: when a worker crashes, wedges past Options.Timeout, or
// desynchronizes its reply stream, the coordinator kills it, waits out a
// capped exponential backoff with jitter, re-execs a replacement for the
// same row range, and re-issues the in-flight request. Every request
// carries an attempt-generation tag that the worker echoes on its reply
// header; a partial set is merged only when the echoed generation matches
// the generation the coordinator issued to the live process, so a stale
// or replayed frame can never be double-counted — each worker's share
// enters the merge exactly once per scan. The last bytes of a dead
// worker's stderr are retained and grafted into the coordinator's trace
// alongside the respawn record.
//
// When stdin closes, each worker appends one trailing telemetry frame —
// a header with "telemetry":true followed by a JSON WorkerReport carrying
// the worker's span tree, scan/row counters, busy time, and peak RSS.
// The coordinator consumes these frames in Close, so a pool that shuts
// down gracefully knows exactly what every worker did; with a trace sink
// installed (SetTraceSink) the worker trees are grafted into the
// coordinator's trace. Timings and counts only — no cell values cross
// the boundary, matching the disclosure posture of the rest of the repo.
package partition

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"time"

	"incognito/internal/core"
	"incognito/internal/faultinject"
	"incognito/internal/relation"
	"incognito/internal/resilience"
	"incognito/internal/trace"
)

// request asks a worker for its share of one frequency set. Sparse
// mirrors the coordinator's kernel choice at request time (the knob, or a
// memory budget past its soft limit), so the worker's representation
// decision matches the one a local scan would have made. Gen is the
// coordinator's attempt-generation tag; the worker echoes it on the reply
// header so a frame can be matched to the exact process attempt that
// produced it.
type request struct {
	Dims   []int `json:"dims"`
	Levels []int `json:"levels"`
	Sparse bool  `json:"sparse,omitempty"`
	Gen    int64 `json:"gen,omitempty"`
}

// response precedes each reply payload: Len bytes of encoded frequency
// set follow, unless Err reports why the worker could not count.
// Telemetry marks the one trailing frame whose payload is a WorkerReport
// rather than a frequency set. Gen echoes the request's generation tag.
type response struct {
	Len       int    `json:"len,omitempty"`
	Err       string `json:"err,omitempty"`
	Telemetry bool   `json:"telemetry,omitempty"`
	Gen       int64  `json:"gen,omitempty"`
}

// WorkerReport is the trailing telemetry frame a worker ships back when
// its stdin closes: identity, work counters, busy time, peak RSS, and the
// worker-local span tree, ready for trace.Span.Adopt on the coordinator.
type WorkerReport struct {
	Index        int             `json:"index"`
	Workers      int             `json:"workers"`
	RowLo        int             `json:"row_lo"`
	RowHi        int             `json:"row_hi"`
	Scans        int64           `json:"scans"`
	Errors       int64           `json:"errors,omitempty"`
	BusyUS       int64           `json:"busy_us"`
	PeakRSSBytes int64           `json:"peak_rss_bytes,omitempty"`
	Trace        *trace.Document `json:"trace,omitempty"`
}

// Attempt records one supervised recovery action: which worker slot was
// respawned, the generation that was replaced, why, what the dead process
// last wrote to stderr, and how long the coordinator backed off before
// re-execing.
type Attempt struct {
	Worker  int
	Gen     int64
	Cause   string
	Stderr  string
	Backoff time.Duration
}

// TraceSink is anything that can open a span to hang worker telemetry
// under. Both *trace.Tracer and *trace.Span satisfy it; a nil *trace.Tracer
// stored in the interface is safe — its Start returns a nil (no-op) span.
type TraceSink interface {
	Start(name string) *trace.Span
}

// Peer is one connected worker from the coordinator's side: requests are
// written to W, replies read from R, and Close releases the transport
// (closing W first is the shutdown signal — workers exit on EOF).
type Peer struct {
	R io.Reader
	W io.WriteCloser
	// Close, when non-nil, reaps the transport after W is closed — for
	// spawned workers it waits for process exit.
	Close func() error
	// Kill, when non-nil, tears the worker down forcibly: when the reply
	// stream desynchronized or timed out, the worker may be blocked
	// mid-write and would never see the EOF.
	Kill func() error
	// StderrTail, when non-nil, returns the last bytes the worker process
	// wrote to stderr — the post-mortem a supervised respawn preserves.
	StderrTail func() []byte
}

// Spawner creates (or re-creates) the worker process for one row-range
// slot. The supervised pool calls it at construction and again after each
// worker failure.
type Spawner func(index, total int) (Peer, error)

// Options tunes pool supervision. The zero value disables it: no retries,
// no reply deadline — a worker failure fails the scan, exactly like an
// unsupervised pool.
type Options struct {
	// Retries is how many times one worker slot may be respawned per scan
	// before the scan (and the run) fails.
	Retries int
	// Timeout bounds how long the coordinator waits for one worker's reply
	// to one request; past it the worker counts as wedged and is killed and
	// respawned. 0 waits forever.
	Timeout time.Duration
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between respawns of the same slot: attempt n sleeps
	// min(BackoffBase·2^(n-1), BackoffMax), jittered to [d/2, d]. Defaults
	// 50ms and 2s.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Logf, when non-nil, receives one line per supervision event (worker
	// death, backoff, respawn) — the daemon routes it into the job log.
	Logf func(format string, args ...any)
}

func (o Options) backoff(attempt int) time.Duration {
	base, max := o.BackoffBase, o.BackoffMax
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter to [d/2, d] so respawn storms from simultaneous failures
	// de-synchronize. Randomness only affects timing, never counts.
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(half)+1))
}

// slot is one row-range's worker seat: the live transport, its attempt
// generation, and the respawn accounting.
type slot struct {
	index int
	peer  Peer
	r     *bufio.Reader
	w     *bufio.Writer
	gen   int64
}

// Pool is the coordinator's handle on a set of partition workers. Its
// Scan is the drop-in ScanOverride for core.Input: one request fans out
// to every worker, the partial sets stream back, and the merge runs in
// worker-index order, so the result is deterministic. A Pool serializes
// its scans — the search requests them one at a time anyway.
type Pool struct {
	mu    sync.Mutex
	slots []*slot
	rows  int
	opts  Options
	// spawn, when non-nil, makes the pool supervised: failed workers are
	// respawned for the same row range instead of failing the run.
	spawn   Spawner
	nextGen int64
	// broken is set when a worker failure could not be recovered (no
	// spawner, or retries exhausted): later scans refuse to run and Close
	// kills the workers instead of waiting for their EOF handshake.
	broken   bool
	sink     TraceSink
	reports  []WorkerReport
	attempts []Attempt
	retries  atomic.Int64
}

// NewPool wires a coordinator over pre-connected peers, unsupervised: a
// worker failure fails the scan. rows is the full table's row count — the
// workload the decoded partials size their representation for, matching a
// local scan of that table.
func NewPool(rows int, peers []Peer) *Pool {
	return NewSupervisedPool(rows, peers, nil, Options{})
}

// NewSupervisedPool wires a coordinator over pre-connected peers with a
// respawn factory: when a worker crashes, wedges past opts.Timeout, or
// desynchronizes, the coordinator kills it and respawns its row range via
// spawn, up to opts.Retries times per scan. A nil spawn disables
// supervision.
func NewSupervisedPool(rows int, peers []Peer, spawn Spawner, opts Options) *Pool {
	p := &Pool{rows: rows, spawn: spawn, opts: opts, slots: make([]*slot, 0, len(peers))}
	for i, pe := range peers {
		p.slots = append(p.slots, &slot{
			index: i,
			peer:  pe,
			r:     bufio.NewReader(pe.R),
			w:     bufio.NewWriter(pe.W),
		})
	}
	return p
}

// Rows returns the table row count the pool was built for; installers
// check it against the table they are about to anonymize.
func (p *Pool) Rows() int { return p.rows }

// Workers returns the number of partition workers.
func (p *Pool) Workers() int { return len(p.slots) }

// Retries returns how many worker respawns the supervisor performed over
// the pool's lifetime.
func (p *Pool) Retries() int64 { return p.retries.Load() }

// Attempts returns the supervision log: one record per respawn, with the
// failure cause and the dead worker's stderr tail.
func (p *Pool) Attempts() []Attempt {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Attempt(nil), p.attempts...)
}

// SetTraceSink installs the destination for worker telemetry: when the
// pool closes gracefully, each worker's span tree is adopted under one
// "partition_workers" span opened on the sink, and any supervision
// attempts land under a "worker_supervision" span. Passing a nil
// *trace.Tracer (or *trace.Span) is fine — the grafting degrades to a
// no-op.
func (p *Pool) SetTraceSink(sink TraceSink) {
	p.mu.Lock()
	p.sink = sink
	p.mu.Unlock()
}

// Reports returns the telemetry frames collected from the workers. It is
// populated by Close — before the pool shuts down, or after a broken
// (killed) shutdown, it is empty.
func (p *Pool) Reports() []WorkerReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]WorkerReport(nil), p.reports...)
}

// WorkerSkew summarizes load balance from the collected reports as
// max/mean busy time: 1.0 is a perfectly balanced pool, larger means one
// worker dominated the wall clock. Returns 0 before Close has collected
// any reports (or when the workers did no timed work).
func (p *Pool) WorkerSkew() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.reports) == 0 {
		return 0
	}
	var sum, max int64
	for _, r := range p.reports {
		sum += r.BusyUS
		if r.BusyUS > max {
			max = r.BusyUS
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(p.reports)) / float64(sum)
}

// tailBuffer retains the last cap bytes written to it — the stderr
// post-mortem of a worker process. Concurrency-safe: exec's stderr copier
// goroutine writes while the supervisor reads.
type tailBuffer struct {
	mu  sync.Mutex
	buf []byte
	cap int
}

func newTailBuffer(cap int) *tailBuffer { return &tailBuffer{cap: cap} }

func (t *tailBuffer) Write(b []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, b...)
	if len(t.buf) > t.cap {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-t.cap:]...)
	}
	return len(b), nil
}

func (t *tailBuffer) Tail() []byte {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]byte(nil), t.buf...)
}

// stderrTailCap bounds how much of each worker's stderr the coordinator
// retains for post-mortems.
const stderrTailCap = 4 << 10

// SpawnSelf launches n copies of the current executable as partition
// workers, one per row range, unsupervised (a worker crash fails the
// run). workerArgs composes the command line that makes the copy load the
// same table and call Serve for range index/total — the hidden worker
// flag of the CLIs.
func SpawnSelf(rows, n int, workerArgs func(index, total int) []string) (*Pool, error) {
	return SpawnSelfSupervised(rows, n, workerArgs, Options{})
}

// SpawnSelfSupervised launches n copies of the current executable as
// supervised partition workers: a worker that crashes, wedges past
// opts.Timeout, or desynchronizes is killed and re-exec'd for the same
// row range with capped backoff, up to opts.Retries times per scan. The
// workers' stderr is both passed through to the coordinator's stderr and
// retained (last 4KiB per process) for the supervision log.
func SpawnSelfSupervised(rows, n int, workerArgs func(index, total int) []string, opts Options) (*Pool, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("partition: resolving own executable: %w", err)
	}
	spawn := func(index, total int) (Peer, error) {
		if faultinject.Fail("partition.worker_exec") {
			return Peer{}, fmt.Errorf("partition: injected exec failure for worker %d", index)
		}
		tail := newTailBuffer(stderrTailCap)
		cmd := exec.Command(exe, workerArgs(index, total)...)
		cmd.Stderr = io.MultiWriter(os.Stderr, tail)
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return Peer{}, fmt.Errorf("partition: worker %d stdin: %w", index, err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return Peer{}, fmt.Errorf("partition: worker %d stdout: %w", index, err)
		}
		if err := cmd.Start(); err != nil {
			return Peer{}, fmt.Errorf("partition: starting worker %d: %w", index, err)
		}
		return Peer{R: stdout, W: stdin, Close: cmd.Wait, Kill: cmd.Process.Kill, StderrTail: tail.Tail}, nil
	}
	peers := make([]Peer, 0, n)
	for i := 0; i < n; i++ {
		pe, err := spawnRetry(spawn, i, n, opts)
		if err != nil {
			NewPool(rows, peers).Close()
			return nil, err
		}
		peers = append(peers, pe)
	}
	p := NewSupervisedPool(rows, peers, spawn, opts)
	return p, nil
}

// spawnRetry calls spawn under the supervised retry/backoff policy — the
// initial seating of each worker goes through the same loop a mid-scan
// respawn does.
func spawnRetry(spawn Spawner, index, total int, opts Options) (Peer, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			d := opts.backoff(attempt)
			if opts.Logf != nil {
				opts.Logf("partition: worker %d spawn failed (%v), retrying in %s (attempt %d/%d)",
					index, lastErr, d, attempt, opts.Retries)
			}
			time.Sleep(d)
		}
		pe, err := spawn(index, total)
		if err == nil {
			return pe, nil
		}
		lastErr = err
		if attempt >= opts.Retries {
			return Peer{}, fmt.Errorf("partition: worker %d failed to start after %d attempts: %w", index, attempt+1, err)
		}
	}
}

// protocolError is a worker-reported, in-band failure (a refused request,
// a recovered panic): the stream stays framed and the worker healthy, so
// the supervisor must not respawn for it.
type protocolError struct{ msg string }

func (e *protocolError) Error() string { return e.msg }

// Scan counts one frequency set across every worker and merges the
// partials. The request is written to all workers before any reply is
// read, so the workers count concurrently; replies are then read and
// merged in worker-index order, which fixes the merge order — counts are
// additive, so the merged set equals the single-process scan exactly.
//
// On a supervised pool a worker that crashes, wedges past the reply
// deadline, or desynchronizes is killed, respawned with backoff, and its
// request re-issued under a fresh generation tag; only the reply whose
// tag matches is merged, exactly once. A worker-reported error (a refused
// request, a recovered panic) is not a worker failure: it fails the scan
// but leaves the pool usable, as before.
func (p *Pool) Scan(dims, levels []int, sparse bool) (*relation.FreqSet, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.slots) == 0 {
		return nil, fmt.Errorf("partition: scan on a closed or empty pool")
	}
	if p.broken {
		return nil, fmt.Errorf("partition: pool broken by an earlier worker failure")
	}
	req := request{Dims: dims, Levels: levels, Sparse: sparse}
	// Phase 1: fan the request out so the workers count concurrently. A
	// send failure is a worker failure: respawn and re-send to that slot.
	for _, s := range p.slots {
		if err := p.sendSupervised(s, req); err != nil {
			p.broken = true
			return nil, err
		}
	}
	// Phase 2: read and merge in worker-index order. A failed reply
	// triggers respawn + re-send + re-read for that slot only; its partial
	// enters the merge exactly once, whichever attempt produced it.
	var out *relation.FreqSet
	var firstErr error
	for _, s := range p.slots {
		part, err := p.receiveSupervised(s, req)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if p.broken {
				return nil, firstErr // stream position lost: stop reading
			}
			continue
		}
		if firstErr != nil {
			continue // drained for framing only
		}
		if out == nil {
			out = part
		} else {
			out.AddFrom(part)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// sendSupervised writes one request to a slot, reseating the worker on a
// transport failure (up to the retry budget).
func (p *Pool) sendSupervised(s *slot, req request) error {
	err := send(s, req)
	if err == nil {
		return nil
	}
	for attempt := 1; ; attempt++ {
		if p.spawn == nil || attempt > p.opts.Retries {
			p.broken = true
			return err
		}
		if rerr := p.reseat(s, attempt, err); rerr != nil {
			err = rerr
			continue
		}
		if err = send(s, req); err == nil {
			return nil
		}
	}
}

// receiveSupervised reads one slot's reply, killing and reseating the
// worker on EOF, a reply deadline, a malformed frame, or a generation
// mismatch — then re-sends the request to the fresh process and reads
// again. Worker-reported in-band errors are returned without respawning:
// the stream is still framed and the worker healthy. A spawn or re-send
// failure on a fresh seat consumes the same retry budget.
func (p *Pool) receiveSupervised(s *slot, req request) (*relation.FreqSet, error) {
	part, err := p.receive(s)
	if err == nil {
		return part, nil
	}
	for attempt := 1; ; attempt++ {
		var perr *protocolError
		if errors.As(err, &perr) {
			return nil, fmt.Errorf("partition: worker %d: %s", s.index, perr.msg)
		}
		if p.spawn == nil || attempt > p.opts.Retries {
			p.broken = true
			return nil, err
		}
		if rerr := p.reseat(s, attempt, err); rerr != nil {
			err = rerr
			continue
		}
		if serr := send(s, req); serr != nil {
			err = serr
			continue
		}
		if part, err = p.receive(s); err == nil {
			return part, nil
		}
	}
}

// send writes one generation-tagged request to a slot.
func send(s *slot, req request) error {
	req.Gen = s.gen
	line, err := json.Marshal(req)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := s.w.Write(line); err != nil {
		return fmt.Errorf("partition: sending to worker %d: %w", s.index, err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("partition: sending to worker %d: %w", s.index, err)
	}
	return nil
}

// receive reads one slot's framed reply, applying the reply deadline.
// Called with p.mu held; the deadline path kills the worker to unblock
// the reader goroutine, which then never touches the slot again.
func (p *Pool) receive(s *slot) (*relation.FreqSet, error) {
	if p.opts.Timeout <= 0 {
		return readReply(s.r, s.index, s.gen, p.rows)
	}
	type result struct {
		part *relation.FreqSet
		err  error
	}
	ch := make(chan result, 1)
	go func(r *bufio.Reader, index int, gen int64, rows int) {
		part, err := readReply(r, index, gen, rows)
		ch <- result{part, err}
	}(s.r, s.index, s.gen, p.rows)
	select {
	case res := <-ch:
		return res.part, res.err
	case <-time.After(p.opts.Timeout):
		if s.peer.Kill != nil {
			_ = s.peer.Kill() // unblocks the reader; its late result is discarded
		}
		return nil, fmt.Errorf("partition: worker %d wedged: no reply within %s", s.index, p.opts.Timeout)
	}
}

// readReply consumes one framed reply: header line, then the payload. It
// owns no pool state — the deadline path may leave a late reader
// goroutine running, and that goroutine must not race the respawned
// slot's fresh reader.
func readReply(r *bufio.Reader, index int, gen int64, rows int) (*relation.FreqSet, error) {
	hdr, err := r.ReadBytes('\n')
	if err != nil {
		return nil, fmt.Errorf("partition: reading worker %d header: %w", index, err)
	}
	var resp response
	if err := json.Unmarshal(hdr, &resp); err != nil {
		return nil, fmt.Errorf("partition: worker %d sent a malformed header: %w", index, err)
	}
	if resp.Err != "" {
		return nil, &protocolError{msg: resp.Err}
	}
	if resp.Gen != gen {
		return nil, fmt.Errorf("partition: worker %d answered generation %d, expected %d (stale frame discarded)", index, resp.Gen, gen)
	}
	if resp.Len < 0 {
		return nil, fmt.Errorf("partition: worker %d claims a negative payload", index)
	}
	payload := make([]byte, resp.Len)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("partition: reading worker %d payload: %w", index, err)
	}
	part, err := relation.DecodeFreqSet(payload, rows)
	if err != nil {
		return nil, fmt.Errorf("partition: worker %d payload: %w", index, err)
	}
	return part, nil
}

// reseat replaces a failed worker: records the attempt (with the dead
// process's stderr tail), backs off, kills and reaps the old process, and
// seats a fresh one under a new generation. attempt is 1-based within the
// current scan phase; the caller enforces the retry budget. On a spawn
// failure the slot is left empty and the error returned — the caller
// counts it against the same budget and calls reseat again.
func (p *Pool) reseat(s *slot, attempt int, cause error) error {
	var tail string
	if s.peer.StderrTail != nil {
		tail = string(s.peer.StderrTail())
	}
	d := p.opts.backoff(attempt)
	p.attempts = append(p.attempts, Attempt{
		Worker: s.index, Gen: s.gen, Cause: cause.Error(), Stderr: tail, Backoff: d,
	})
	p.retries.Add(1)
	if p.opts.Logf != nil {
		p.opts.Logf("partition: worker %d failed (%v), respawning in %s (attempt %d/%d)",
			s.index, cause, d, attempt, p.opts.Retries)
	}
	time.Sleep(d)
	// Kill before reap: the dead-or-wedged process may be blocked mid-write
	// and would never exit on its own. After a failed spawn the slot is
	// empty (nil transport) and there is nothing to tear down.
	if s.peer.Kill != nil {
		_ = s.peer.Kill()
	}
	if s.peer.W != nil {
		_ = s.peer.W.Close()
	}
	if s.peer.Close != nil {
		_ = s.peer.Close()
	}
	s.peer = Peer{}
	pe, err := p.spawn(s.index, len(p.slots))
	if err != nil {
		return fmt.Errorf("partition: respawning worker %d: %w", s.index, err)
	}
	p.nextGen++
	s.peer = pe
	s.r = bufio.NewReader(pe.R)
	s.w = bufio.NewWriter(pe.W)
	s.gen = p.nextGen
	return nil
}

// Close shuts the pool down: every worker's write side is closed (the EOF
// is their exit signal), the trailing telemetry frames are collected and
// grafted into the trace sink, then the transports are reaped. A broken
// pool kills its workers first — they may be blocked mid-write and would
// never reach the EOF — and skips telemetry (the stream position is
// lost). The first graceful-path error wins but every peer is still
// closed.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.slots == nil {
		return nil // already closed; reports stay as collected
	}
	var first error
	for _, s := range p.slots {
		if err := s.peer.W.Close(); err != nil && first == nil {
			first = err
		}
	}
	if !p.broken {
		// All write sides are closed, so every worker is concurrently
		// finalizing its frame; reading in index order cannot deadlock.
		for _, s := range p.slots {
			if rep, ok := readTelemetry(s.r); ok {
				rep.Index = s.index // trust our ordering, not the wire
				p.reports = append(p.reports, rep)
			}
		}
	}
	p.graftReports()
	for _, s := range p.slots {
		if p.broken && s.peer.Kill != nil {
			s.peer.Kill() // unblock a worker stuck mid-write; Wait errors follow
		}
		if s.peer.Close != nil {
			if err := s.peer.Close(); err != nil && first == nil && !p.broken {
				first = err
			}
		}
	}
	p.slots = nil
	return first
}

// readTelemetry consumes one worker's trailing telemetry frame.
// Best-effort by design: a worker that died before writing its frame, or
// an older binary that never sends one, just yields no report — shutdown
// must not fail because diagnostics are missing.
func readTelemetry(r *bufio.Reader) (WorkerReport, bool) {
	var rep WorkerReport
	hdr, err := r.ReadBytes('\n')
	if err != nil {
		return rep, false
	}
	var resp response
	if err := json.Unmarshal(hdr, &resp); err != nil ||
		!resp.Telemetry || resp.Err != "" || resp.Len <= 0 {
		return rep, false
	}
	body := make([]byte, resp.Len)
	if _, err := io.ReadFull(r, body); err != nil {
		return rep, false
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return rep, false
	}
	return rep, true
}

// graftReports hangs every collected worker span tree under one
// "partition_workers" span on the sink, and the supervision log (respawn
// causes, backoffs, stderr tails) under one "worker_supervision" span.
// Called with p.mu held.
func (p *Pool) graftReports() {
	if p.sink == nil {
		return
	}
	if len(p.reports) > 0 {
		sp := p.sink.Start("partition_workers")
		sp.SetAttr("workers", len(p.reports))
		for _, rep := range p.reports {
			if rep.Trace == nil {
				continue
			}
			for _, root := range rep.Trace.Spans {
				sp.Adopt(root)
			}
		}
		sp.End()
	}
	if len(p.attempts) > 0 {
		sup := p.sink.Start("worker_supervision")
		sup.SetAttr("respawns", len(p.attempts))
		for _, a := range p.attempts {
			sp := sup.Start("worker_respawn")
			sp.SetAttr("worker", a.Worker)
			sp.SetAttr("gen", a.Gen)
			sp.SetAttr("cause", a.Cause)
			sp.SetAttr("backoff_ms", a.Backoff.Milliseconds())
			if a.Stderr != "" {
				sp.SetAttr("stderr_tail", a.Stderr)
			}
			sp.End()
		}
		sup.End()
	}
}

// Serve runs one worker's request loop: count rows [index·n/total,
// (index+1)·n/total) of in's table for each request on r, stream the
// encoded partials to w, return when r reaches EOF. A failure to count
// one request — including a panic, recovered into a
// *resilience.PanicError — is reported in that reply's header and the
// loop continues; only transport errors end the loop early. Each reply
// echoes the request's generation tag, so a supervising coordinator can
// match it to the process attempt it belongs to.
//
// On clean EOF the worker writes one trailing telemetry frame (a
// WorkerReport) before returning, so the coordinator's Close can account
// for this worker's scans, busy time, and span tree.
func Serve(in *core.Input, index, total int, r io.Reader, w io.Writer) error {
	if total < 1 || index < 0 || index >= total {
		return fmt.Errorf("partition: worker index %d of %d out of range", index, total)
	}
	n := in.Table.NumRows()
	lo, hi := index*n/total, (index+1)*n/total
	bw := bufio.NewWriter(w)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	tr := trace.New()
	root := tr.Start("partition_worker")
	root.SetAttr("worker", index)
	root.SetAttr("workers", total)
	root.SetAttr("row_lo", lo)
	root.SetAttr("row_hi", hi)
	rep := WorkerReport{Index: index, Workers: total, RowLo: lo, RowHi: hi}
	var buf []byte
	for sc.Scan() {
		var req request
		var payload []byte
		err := json.Unmarshal(sc.Bytes(), &req)
		sp := root.Start("worker_scan")
		t0 := time.Now()
		if err == nil {
			payload, err = countRequest(in, req, lo, hi, buf[:0])
			buf = payload
		}
		rep.BusyUS += time.Since(t0).Microseconds()
		if err == nil {
			sp.Add("worker_scans", 1)
			sp.Add("worker_rows", int64(hi-lo))
			rep.Scans++
		} else {
			sp.Add("worker_errors", 1)
			sp.SetAttr("err", err.Error())
			rep.Errors++
		}
		sp.End()
		hdr := response{Len: len(payload), Gen: req.Gen}
		if err != nil {
			hdr = response{Err: err.Error(), Gen: req.Gen}
		}
		line, merr := json.Marshal(hdr)
		if merr != nil {
			return merr
		}
		if _, werr := bw.Write(append(line, '\n')); werr != nil {
			return werr
		}
		if err == nil {
			if faultinject.Enabled() {
				// Make the header visible before the injected mid-frame death
				// so the coordinator observes a desynchronized stream, exactly
				// like a worker killed between header and payload.
				_ = bw.Flush()
			}
			faultinject.Point("partition.worker_mid_frame")
			if _, werr := bw.Write(payload); werr != nil {
				return werr
			}
		}
		if werr := bw.Flush(); werr != nil {
			return werr
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	rep.PeakRSSBytes = peakRSS()
	root.SetAttr("peak_rss_bytes", rep.PeakRSSBytes)
	root.End()
	rep.Trace = tr.Export()
	return writeTelemetry(bw, rep)
}

// writeTelemetry frames one WorkerReport onto the reply stream.
func writeTelemetry(bw *bufio.Writer, rep WorkerReport) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	hdr, err := json.Marshal(response{Len: len(body), Telemetry: true})
	if err != nil {
		return err
	}
	if _, err := bw.Write(append(hdr, '\n')); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	return bw.Flush()
}

// countRequest validates and executes one scan request under a recover
// guard, so a panic in the counting kernel comes back as this request's
// error instead of killing the worker process.
func countRequest(in *core.Input, req request, lo, hi int, buf []byte) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			payload, err = nil, resilience.AsPanicError("partition_scan", r)
		}
	}()
	if len(req.Dims) == 0 || len(req.Dims) != len(req.Levels) {
		return nil, fmt.Errorf("malformed scan request: %d dims, %d levels", len(req.Dims), len(req.Levels))
	}
	for i, d := range req.Dims {
		if d < 0 || d >= len(in.QI) {
			return nil, fmt.Errorf("dim %d out of range [0,%d)", d, len(in.QI))
		}
		if l := req.Levels[i]; l < 0 || l > in.QI[d].H.Height() {
			return nil, fmt.Errorf("level %d out of range for dim %d", l, d)
		}
	}
	win := *in
	win.SparseKernel = req.Sparse
	f := win.ScanFreqRange(req.Dims, req.Levels, lo, hi)
	return relation.EncodeFreqSet(buf, f), nil
}
