// Package partition implements multi-process frequency-set counting: the
// base table's rows are split into contiguous ranges, one worker process
// per range counts its share of every requested frequency set locally,
// and the coordinator merges the partial sets additively. Counts are
// additive, so the merged set — and therefore every Solution and Stat
// derived from it — is bit-identical to a single-process scan.
//
// Only base-table scans cross process boundaries. Rollups, the candidate
// search, and all Stats accounting stay on the coordinator, which is what
// makes the split safe: the workers are pure functions from (dims,
// levels, row range) to a frequency set.
//
// The wire protocol is deliberately boring. Requests go down each
// worker's stdin as single JSON lines (they are tiny and debuggable);
// responses come back on stdout as a JSON header line carrying the
// payload length (or an error string) followed by that many bytes of the
// deterministic binary frequency-set encoding (relation.EncodeFreqSet —
// compact where volume actually is). Workers are the same executable
// re-exec'd with a hidden flag; they serve requests until stdin closes.
//
// When stdin closes, each worker appends one trailing telemetry frame —
// a header with "telemetry":true followed by a JSON WorkerReport carrying
// the worker's span tree, scan/row counters, busy time, and peak RSS.
// The coordinator consumes these frames in Close, so a pool that shuts
// down gracefully knows exactly what every worker did; with a trace sink
// installed (SetTraceSink) the worker trees are grafted into the
// coordinator's trace. Timings and counts only — no cell values cross
// the boundary, matching the disclosure posture of the rest of the repo.
package partition

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"time"

	"incognito/internal/core"
	"incognito/internal/relation"
	"incognito/internal/resilience"
	"incognito/internal/trace"
)

// request asks a worker for its share of one frequency set. Sparse
// mirrors the coordinator's kernel choice at request time (the knob, or a
// memory budget past its soft limit), so the worker's representation
// decision matches the one a local scan would have made.
type request struct {
	Dims   []int `json:"dims"`
	Levels []int `json:"levels"`
	Sparse bool  `json:"sparse,omitempty"`
}

// response precedes each reply payload: Len bytes of encoded frequency
// set follow, unless Err reports why the worker could not count.
// Telemetry marks the one trailing frame whose payload is a WorkerReport
// rather than a frequency set.
type response struct {
	Len       int    `json:"len,omitempty"`
	Err       string `json:"err,omitempty"`
	Telemetry bool   `json:"telemetry,omitempty"`
}

// WorkerReport is the trailing telemetry frame a worker ships back when
// its stdin closes: identity, work counters, busy time, peak RSS, and the
// worker-local span tree, ready for trace.Span.Adopt on the coordinator.
type WorkerReport struct {
	Index        int             `json:"index"`
	Workers      int             `json:"workers"`
	RowLo        int             `json:"row_lo"`
	RowHi        int             `json:"row_hi"`
	Scans        int64           `json:"scans"`
	Errors       int64           `json:"errors,omitempty"`
	BusyUS       int64           `json:"busy_us"`
	PeakRSSBytes int64           `json:"peak_rss_bytes,omitempty"`
	Trace        *trace.Document `json:"trace,omitempty"`
}

// TraceSink is anything that can open a span to hang worker telemetry
// under. Both *trace.Tracer and *trace.Span satisfy it; a nil *trace.Tracer
// stored in the interface is safe — its Start returns a nil (no-op) span.
type TraceSink interface {
	Start(name string) *trace.Span
}

// Peer is one connected worker from the coordinator's side: requests are
// written to W, replies read from R, and Close releases the transport
// (closing W first is the shutdown signal — workers exit on EOF).
type Peer struct {
	R io.Reader
	W io.WriteCloser
	// Close, when non-nil, reaps the transport after W is closed — for
	// spawned workers it waits for process exit.
	Close func() error
	// Kill, when non-nil, tears the worker down forcibly. It is only used
	// when the reply stream desynchronized (a transport error mid-scan), so
	// the worker may be blocked mid-write and would never see the EOF.
	Kill func() error
}

// Pool is the coordinator's handle on a set of partition workers. Its
// Scan is the drop-in ScanOverride for core.Input: one request fans out
// to every worker, the partial sets stream back, and the merge runs in
// worker-index order, so the result is deterministic. A Pool serializes
// its scans — the search requests them one at a time anyway.
type Pool struct {
	mu    sync.Mutex
	peers []Peer
	rs    []*bufio.Reader
	ws    []*bufio.Writer
	rows  int
	buf   []byte // reusable payload buffer
	// broken is set when a reply stream desynchronized (transport or
	// decode failure): later scans refuse to run and Close kills the
	// workers instead of waiting for their EOF handshake.
	broken  bool
	sink    TraceSink
	reports []WorkerReport
}

// NewPool wires a coordinator over pre-connected peers. rows is the full
// table's row count — the workload the decoded partials size their
// representation for, matching a local scan of that table.
func NewPool(rows int, peers []Peer) *Pool {
	p := &Pool{peers: peers, rows: rows}
	for _, pe := range peers {
		p.rs = append(p.rs, bufio.NewReader(pe.R))
		p.ws = append(p.ws, bufio.NewWriter(pe.W))
	}
	return p
}

// Rows returns the table row count the pool was built for; installers
// check it against the table they are about to anonymize.
func (p *Pool) Rows() int { return p.rows }

// Workers returns the number of partition workers.
func (p *Pool) Workers() int { return len(p.peers) }

// SetTraceSink installs the destination for worker telemetry: when the
// pool closes gracefully, each worker's span tree is adopted under one
// "partition_workers" span opened on the sink. Passing a nil *trace.Tracer
// (or *trace.Span) is fine — the grafting degrades to a no-op.
func (p *Pool) SetTraceSink(sink TraceSink) {
	p.mu.Lock()
	p.sink = sink
	p.mu.Unlock()
}

// Reports returns the telemetry frames collected from the workers. It is
// populated by Close — before the pool shuts down, or after a broken
// (killed) shutdown, it is empty.
func (p *Pool) Reports() []WorkerReport {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]WorkerReport(nil), p.reports...)
}

// WorkerSkew summarizes load balance from the collected reports as
// max/mean busy time: 1.0 is a perfectly balanced pool, larger means one
// worker dominated the wall clock. Returns 0 before Close has collected
// any reports (or when the workers did no timed work).
func (p *Pool) WorkerSkew() float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.reports) == 0 {
		return 0
	}
	var sum, max int64
	for _, r := range p.reports {
		sum += r.BusyUS
		if r.BusyUS > max {
			max = r.BusyUS
		}
	}
	if sum == 0 {
		return 0
	}
	return float64(max) * float64(len(p.reports)) / float64(sum)
}

// SpawnSelf launches n copies of the current executable as partition
// workers, one per row range. workerArgs composes the command line that
// makes the copy load the same table and call Serve for range index/total
// — the hidden worker flag of the CLIs. The workers' stderr is inherited
// so their failures surface on the coordinator's stderr.
func SpawnSelf(rows, n int, workerArgs func(index, total int) []string) (*Pool, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("partition: resolving own executable: %w", err)
	}
	peers := make([]Peer, 0, n)
	fail := func(err error) (*Pool, error) {
		NewPool(rows, peers).Close()
		return nil, err
	}
	for i := 0; i < n; i++ {
		cmd := exec.Command(exe, workerArgs(i, n)...)
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return fail(fmt.Errorf("partition: worker %d stdin: %w", i, err))
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return fail(fmt.Errorf("partition: worker %d stdout: %w", i, err))
		}
		if err := cmd.Start(); err != nil {
			return fail(fmt.Errorf("partition: starting worker %d: %w", i, err))
		}
		peers = append(peers, Peer{R: stdout, W: stdin, Close: cmd.Wait, Kill: cmd.Process.Kill})
	}
	return NewPool(rows, peers), nil
}

// Scan counts one frequency set across every worker and merges the
// partials. The request is written to all workers before any reply is
// read, so the workers count concurrently; replies are then read and
// merged in worker-index order, which fixes the merge order — counts are
// additive, so the merged set equals the single-process scan exactly.
//
// Every worker's reply is consumed even after a failure, as long as the
// streams stay framed: a worker-reported error (a refused request, a
// recovered panic) leaves the pool usable for further scans. Only a
// transport or decode failure — where the stream position is lost —
// marks the pool broken; Close then tears the workers down instead of
// handshaking.
func (p *Pool) Scan(dims, levels []int, sparse bool) (*relation.FreqSet, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.peers) == 0 {
		return nil, fmt.Errorf("partition: scan on a closed or empty pool")
	}
	if p.broken {
		return nil, fmt.Errorf("partition: pool broken by an earlier transport failure")
	}
	line, err := json.Marshal(request{Dims: dims, Levels: levels, Sparse: sparse})
	if err != nil {
		return nil, err
	}
	line = append(line, '\n')
	for i, w := range p.ws {
		if _, err := w.Write(line); err != nil {
			p.broken = true
			return nil, fmt.Errorf("partition: sending to worker %d: %w", i, err)
		}
		if err := w.Flush(); err != nil {
			p.broken = true
			return nil, fmt.Errorf("partition: sending to worker %d: %w", i, err)
		}
	}
	var out *relation.FreqSet
	var firstErr error
	for i, r := range p.rs {
		part, err := p.readReply(i, r)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if p.broken {
				return nil, firstErr // stream position lost: stop reading
			}
			continue
		}
		if firstErr != nil {
			continue // drained for framing only
		}
		if out == nil {
			out = part
		} else {
			out.AddFrom(part)
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// readReply consumes one worker's framed reply: header line, then the
// payload. A worker-reported error keeps the stream in sync; a transport
// or decode failure marks the pool broken.
func (p *Pool) readReply(i int, r *bufio.Reader) (*relation.FreqSet, error) {
	hdr, err := r.ReadBytes('\n')
	if err != nil {
		p.broken = true
		return nil, fmt.Errorf("partition: reading worker %d header: %w", i, err)
	}
	var resp response
	if err := json.Unmarshal(hdr, &resp); err != nil {
		p.broken = true
		return nil, fmt.Errorf("partition: worker %d sent a malformed header: %w", i, err)
	}
	if resp.Err != "" {
		return nil, fmt.Errorf("partition: worker %d: %s", i, resp.Err)
	}
	if resp.Len < 0 {
		p.broken = true
		return nil, fmt.Errorf("partition: worker %d claims a negative payload", i)
	}
	if cap(p.buf) < resp.Len {
		p.buf = make([]byte, resp.Len)
	}
	payload := p.buf[:resp.Len]
	if _, err := io.ReadFull(r, payload); err != nil {
		p.broken = true
		return nil, fmt.Errorf("partition: reading worker %d payload: %w", i, err)
	}
	part, err := relation.DecodeFreqSet(payload, p.rows)
	if err != nil {
		p.broken = true
		return nil, fmt.Errorf("partition: worker %d payload: %w", i, err)
	}
	return part, nil
}

// Close shuts the pool down: every worker's write side is closed (the EOF
// is their exit signal), the trailing telemetry frames are collected and
// grafted into the trace sink, then the transports are reaped. A broken
// pool kills its workers first — they may be blocked mid-write and would
// never reach the EOF — and skips telemetry (the stream position is
// lost). The first graceful-path error wins but every peer is still
// closed.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.peers == nil {
		return nil // already closed; reports stay as collected
	}
	var first error
	for _, pe := range p.peers {
		if err := pe.W.Close(); err != nil && first == nil {
			first = err
		}
	}
	if !p.broken {
		// All write sides are closed, so every worker is concurrently
		// finalizing its frame; reading in index order cannot deadlock.
		for i, r := range p.rs {
			if rep, ok := readTelemetry(r); ok {
				rep.Index = i // trust our ordering, not the wire
				p.reports = append(p.reports, rep)
			}
		}
		p.graftReports()
	}
	for _, pe := range p.peers {
		if p.broken && pe.Kill != nil {
			pe.Kill() // unblock a worker stuck mid-write; Wait errors follow
		}
		if pe.Close != nil {
			if err := pe.Close(); err != nil && first == nil && !p.broken {
				first = err
			}
		}
	}
	p.peers, p.rs, p.ws = nil, nil, nil
	return first
}

// readTelemetry consumes one worker's trailing telemetry frame.
// Best-effort by design: a worker that died before writing its frame, or
// an older binary that never sends one, just yields no report — shutdown
// must not fail because diagnostics are missing.
func readTelemetry(r *bufio.Reader) (WorkerReport, bool) {
	var rep WorkerReport
	hdr, err := r.ReadBytes('\n')
	if err != nil {
		return rep, false
	}
	var resp response
	if err := json.Unmarshal(hdr, &resp); err != nil ||
		!resp.Telemetry || resp.Err != "" || resp.Len <= 0 {
		return rep, false
	}
	body := make([]byte, resp.Len)
	if _, err := io.ReadFull(r, body); err != nil {
		return rep, false
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		return rep, false
	}
	return rep, true
}

// graftReports hangs every collected worker span tree under one
// "partition_workers" span on the sink. Called with p.mu held.
func (p *Pool) graftReports() {
	if p.sink == nil || len(p.reports) == 0 {
		return
	}
	sp := p.sink.Start("partition_workers")
	sp.SetAttr("workers", len(p.reports))
	for _, rep := range p.reports {
		if rep.Trace == nil {
			continue
		}
		for _, root := range rep.Trace.Spans {
			sp.Adopt(root)
		}
	}
	sp.End()
}

// Serve runs one worker's request loop: count rows [index·n/total,
// (index+1)·n/total) of in's table for each request on r, stream the
// encoded partials to w, return when r reaches EOF. A failure to count
// one request — including a panic, recovered into a
// *resilience.PanicError — is reported in that reply's header and the
// loop continues; only transport errors end the loop early.
//
// On clean EOF the worker writes one trailing telemetry frame (a
// WorkerReport) before returning, so the coordinator's Close can account
// for this worker's scans, busy time, and span tree.
func Serve(in *core.Input, index, total int, r io.Reader, w io.Writer) error {
	if total < 1 || index < 0 || index >= total {
		return fmt.Errorf("partition: worker index %d of %d out of range", index, total)
	}
	n := in.Table.NumRows()
	lo, hi := index*n/total, (index+1)*n/total
	bw := bufio.NewWriter(w)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 4096), 1<<20)
	tr := trace.New()
	root := tr.Start("partition_worker")
	root.SetAttr("worker", index)
	root.SetAttr("workers", total)
	root.SetAttr("row_lo", lo)
	root.SetAttr("row_hi", hi)
	rep := WorkerReport{Index: index, Workers: total, RowLo: lo, RowHi: hi}
	var buf []byte
	for sc.Scan() {
		var req request
		var payload []byte
		err := json.Unmarshal(sc.Bytes(), &req)
		sp := root.Start("worker_scan")
		t0 := time.Now()
		if err == nil {
			payload, err = countRequest(in, req, lo, hi, buf[:0])
			buf = payload
		}
		rep.BusyUS += time.Since(t0).Microseconds()
		if err == nil {
			sp.Add("worker_scans", 1)
			sp.Add("worker_rows", int64(hi-lo))
			rep.Scans++
		} else {
			sp.Add("worker_errors", 1)
			sp.SetAttr("err", err.Error())
			rep.Errors++
		}
		sp.End()
		hdr := response{Len: len(payload)}
		if err != nil {
			hdr = response{Err: err.Error()}
		}
		line, merr := json.Marshal(hdr)
		if merr != nil {
			return merr
		}
		if _, werr := bw.Write(append(line, '\n')); werr != nil {
			return werr
		}
		if err == nil {
			if _, werr := bw.Write(payload); werr != nil {
				return werr
			}
		}
		if werr := bw.Flush(); werr != nil {
			return werr
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	rep.PeakRSSBytes = peakRSS()
	root.SetAttr("peak_rss_bytes", rep.PeakRSSBytes)
	root.End()
	rep.Trace = tr.Export()
	return writeTelemetry(bw, rep)
}

// writeTelemetry frames one WorkerReport onto the reply stream.
func writeTelemetry(bw *bufio.Writer, rep WorkerReport) error {
	body, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	hdr, err := json.Marshal(response{Len: len(body), Telemetry: true})
	if err != nil {
		return err
	}
	if _, err := bw.Write(append(hdr, '\n')); err != nil {
		return err
	}
	if _, err := bw.Write(body); err != nil {
		return err
	}
	return bw.Flush()
}

// countRequest validates and executes one scan request under a recover
// guard, so a panic in the counting kernel comes back as this request's
// error instead of killing the worker process.
func countRequest(in *core.Input, req request, lo, hi int, buf []byte) (payload []byte, err error) {
	defer func() {
		if r := recover(); r != nil {
			payload, err = nil, resilience.AsPanicError("partition_scan", r)
		}
	}()
	if len(req.Dims) == 0 || len(req.Dims) != len(req.Levels) {
		return nil, fmt.Errorf("malformed scan request: %d dims, %d levels", len(req.Dims), len(req.Levels))
	}
	for i, d := range req.Dims {
		if d < 0 || d >= len(in.QI) {
			return nil, fmt.Errorf("dim %d out of range [0,%d)", d, len(in.QI))
		}
		if l := req.Levels[i]; l < 0 || l > in.QI[d].H.Height() {
			return nil, fmt.Errorf("level %d out of range for dim %d", l, d)
		}
	}
	win := *in
	win.SparseKernel = req.Sparse
	f := win.ScanFreqRange(req.Dims, req.Levels, lo, hi)
	return relation.EncodeFreqSet(buf, f), nil
}
