package partition

import (
	"io"
	"strings"
	"sync"
	"testing"

	"incognito/internal/core"
	"incognito/internal/dataset"
	"incognito/internal/relation"
)

// servePool wires total in-process workers (goroutines running Serve over
// io.Pipe transports) into a Pool — the same shape the daemon builds with
// processes, without the re-exec.
func servePool(t *testing.T, in *core.Input, total int) (*Pool, *sync.WaitGroup) {
	t.Helper()
	peers := make([]Peer, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		reqR, reqW := io.Pipe()
		respR, respW := io.Pipe()
		wg.Add(1)
		go func(i int, r *io.PipeReader, w *io.PipeWriter) {
			defer wg.Done()
			w.CloseWithError(Serve(in, i, total, r, w))
		}(i, reqR, respW)
		peers[i] = Peer{R: respR, W: reqW}
	}
	return NewPool(in.Table.NumRows(), peers), &wg
}

func patientsInput(t *testing.T) *core.Input {
	t.Helper()
	d := dataset.Patients()
	in := core.NewInput(d.Table, d.QICols, d.Hierarchies, 2, 0)
	return &in
}

// TestServeScanMergesToLocal: the fan-out/merge must reproduce a local
// scan exactly, tuple for tuple, across kernels and worker counts.
func TestServeScanMergesToLocal(t *testing.T) {
	in := patientsInput(t)
	for _, total := range []int{1, 2, 3} {
		for _, sparse := range []bool{false, true} {
			pool, wg := servePool(t, in, total)
			if pool.Rows() != in.Table.NumRows() {
				t.Fatalf("Rows() = %d, want %d", pool.Rows(), in.Table.NumRows())
			}
			if pool.Workers() != total {
				t.Fatalf("Workers() = %d, want %d", pool.Workers(), total)
			}
			dims, levels := []int{0, 1, 2}, []int{0, 0, 1}
			got, err := pool.Scan(dims, levels, sparse)
			if err != nil {
				t.Fatalf("total=%d sparse=%v: %v", total, sparse, err)
			}
			want := in.ScanFreq(dims, levels)
			if got.Total() != want.Total() || got.Len() != want.Len() {
				t.Fatalf("total=%d sparse=%v: merged %d/%d tuples, want %d/%d",
					total, sparse, got.Total(), got.Len(), want.Total(), want.Len())
			}
			want.Each(func(codes []int32, count int64) {
				if got.Count(codes) != count {
					t.Errorf("total=%d sparse=%v: count(%v) = %d, want %d",
						total, sparse, codes, got.Count(codes), count)
				}
			})
			if err := pool.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			wg.Wait()
			// The workers' frames arrived: each served exactly one scan.
			reports := pool.Reports()
			if len(reports) != total {
				t.Fatalf("reports = %d, want %d", len(reports), total)
			}
			for i, rep := range reports {
				if rep.Index != i || rep.Workers != total || rep.Scans != 1 || rep.Errors != 0 {
					t.Errorf("report[%d] = %+v", i, rep)
				}
			}
		}
	}
}

// TestServeWorkerErrorKeepsPoolUsable: a malformed request is a per-scan
// error reported by every worker; the streams stay framed and the next
// scan succeeds.
func TestServeWorkerErrorKeepsPoolUsable(t *testing.T) {
	in := patientsInput(t)
	pool, wg := servePool(t, in, 2)
	defer wg.Wait()
	defer pool.Close()

	if _, err := pool.Scan([]int{99}, []int{0}, false); err == nil {
		t.Fatal("out-of-range dim accepted")
	} else if !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("err = %v", err)
	}
	if _, err := pool.Scan([]int{0, 1}, []int{0}, false); err == nil {
		t.Fatal("mismatched dims/levels accepted")
	}
	if _, err := pool.Scan([]int{2}, []int{99}, false); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	// The pool is not broken: a well-formed scan still works.
	got, err := pool.Scan([]int{2}, []int{1}, false)
	if err != nil {
		t.Fatalf("scan after worker errors: %v", err)
	}
	if want := in.ScanFreq([]int{2}, []int{1}); got.Total() != want.Total() {
		t.Fatalf("total = %d, want %d", got.Total(), want.Total())
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// Errors were counted in the telemetry frames alongside the one
	// successful scan.
	for i, rep := range pool.Reports() {
		if rep.Scans != 1 || rep.Errors != 3 {
			t.Errorf("report[%d]: scans=%d errors=%d, want 1/3", i, rep.Scans, rep.Errors)
		}
	}
}

// TestPoolBrokenTransport: garbage on the reply stream loses the frame
// position; the scan fails, later scans refuse to run, and Close skips
// the telemetry handshake.
func TestPoolBrokenTransport(t *testing.T) {
	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		io.Copy(io.Discard, reqR)
	}()
	go func() {
		respW.Write([]byte("this is not a JSON header\n"))
		respW.Close()
	}()
	killed := false
	pool := NewPool(6, []Peer{{R: respR, W: reqW, Kill: func() error { killed = true; return nil }}})
	if _, err := pool.Scan([]int{0}, []int{0}, false); err == nil {
		t.Fatal("scan over a garbage stream succeeded")
	}
	if _, err := pool.Scan([]int{0}, []int{0}, false); err == nil ||
		!strings.Contains(err.Error(), "broken") {
		t.Fatalf("scan on a broken pool: %v", err)
	}
	if err := pool.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if !killed {
		t.Error("broken pool did not kill its worker")
	}
	if len(pool.Reports()) != 0 {
		t.Error("broken pool collected telemetry")
	}
	<-done
}

// TestPoolScanClosedAndEmpty: scans on a closed or empty pool fail
// loudly instead of hanging.
func TestPoolScanClosedAndEmpty(t *testing.T) {
	pool := NewPool(0, nil)
	if _, err := pool.Scan([]int{0}, []int{0}, false); err == nil {
		t.Fatal("scan on an empty pool succeeded")
	}
}

// TestServeIndexOutOfRange: Serve validates its row-range identity before
// touching the transport.
func TestServeIndexOutOfRange(t *testing.T) {
	in := patientsInput(t)
	for _, c := range []struct{ index, total int }{{-1, 2}, {2, 2}, {0, 0}} {
		if err := Serve(in, c.index, c.total, strings.NewReader(""), io.Discard); err == nil {
			t.Errorf("Serve(%d/%d) accepted", c.index, c.total)
		}
	}
}

// TestServeSparseKernelMatches: the Sparse flag flips the worker's
// representation without changing counts (the kernel-equivalence
// guarantee holds across the wire).
func TestServeSparseKernelMatches(t *testing.T) {
	in := patientsInput(t)
	count := func(sparse bool) *relation.FreqSet {
		pool, wg := servePool(t, in, 2)
		got, err := pool.Scan([]int{0, 2}, []int{1, 1}, sparse)
		if err != nil {
			t.Fatal(err)
		}
		pool.Close()
		wg.Wait()
		return got
	}
	dense, sparse := count(false), count(true)
	if dense.Total() != sparse.Total() || dense.Len() != sparse.Len() {
		t.Fatalf("dense %d/%d != sparse %d/%d",
			dense.Total(), dense.Len(), sparse.Total(), sparse.Len())
	}
	dense.Each(func(codes []int32, n int64) {
		if sparse.Count(codes) != n {
			t.Errorf("count(%v): dense %d, sparse %d", codes, n, sparse.Count(codes))
		}
	})
}
