//go:build !unix

package partition

// peakRSS is unavailable off unix; the telemetry frame reports 0, which
// consumers render as "unknown".
func peakRSS() int64 { return 0 }
