package partition

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"incognito/internal/core"
	"incognito/internal/faultinject"
	"incognito/internal/trace"
)

// fleet builds in-process supervised workers over io.Pipe transports. Each
// (slot, spawn-number) pair gets a behavior from mode, so tests can script
// "first process for slot 0 dies, its replacement is healthy".
type fleet struct {
	t     *testing.T
	in    *core.Input
	total int

	mu     sync.Mutex
	spawns map[int]int
	wg     sync.WaitGroup
	killed int

	// mode maps (slot index, 1-based spawn number) to a behavior:
	// "ok" serves requests, "dead" EOFs the reply stream immediately,
	// "wedge" consumes requests and never replies, "stale" answers with a
	// wrong generation tag.
	mode func(index, spawn int) string
}

func (f *fleet) spawn(index, total int) (Peer, error) {
	// Mirror the real SpawnSelfSupervised exec site so faultinject builds
	// can fail in-process spawns too (no-op without the build tag).
	if faultinject.Fail("partition.worker_exec") {
		return Peer{}, fmt.Errorf("partition: injected exec failure for worker %d", index)
	}
	f.mu.Lock()
	f.spawns[index]++
	n := f.spawns[index]
	f.mu.Unlock()
	behavior := f.mode(index, n)

	reqR, reqW := io.Pipe()
	respR, respW := io.Pipe()
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		switch behavior {
		case "ok":
			func() {
				// An injected mid-frame panic stands in for the worker
				// process dying between header and payload: recover it and
				// slam the reply stream shut, exactly what the coordinator
				// would observe from a real SIGKILL'd worker.
				defer func() {
					if r := recover(); r != nil {
						respW.CloseWithError(fmt.Errorf("worker died: %v", r))
						reqR.CloseWithError(io.ErrClosedPipe)
					}
				}()
				respW.CloseWithError(Serve(f.in, index, total, reqR, respW))
			}()
		case "dead":
			respW.Close() // EOF before any reply: the process crashed at birth
			io.Copy(io.Discard, reqR)
		case "wedge":
			io.Copy(io.Discard, reqR) // swallow requests, never answer
			respW.Close()
		case "stale":
			// A valid-looking frame under the wrong generation tag: must be
			// discarded, never merged.
			dec := json.NewDecoder(reqR)
			var req request
			if err := dec.Decode(&req); err == nil {
				hdr, _ := json.Marshal(response{Len: 4, Gen: req.Gen + 7})
				respW.Write(append(hdr, '\n'))
				respW.Write([]byte("junk"))
			}
			io.Copy(io.Discard, reqR)
			respW.Close()
		default:
			f.t.Errorf("unknown behavior %q", behavior)
		}
	}()
	kill := func() error {
		f.mu.Lock()
		f.killed++
		f.mu.Unlock()
		reqR.CloseWithError(io.ErrClosedPipe)
		respW.CloseWithError(io.ErrClosedPipe)
		return nil
	}
	tail := func() []byte { return []byte(fmt.Sprintf("worker %d spawn %d: simulated stderr", index, n)) }
	return Peer{R: respR, W: reqW, Kill: kill, StderrTail: tail}, nil
}

// supervisedPool seats total workers from the fleet's spawner under the
// given options.
func supervisedPool(t *testing.T, f *fleet, opts Options) *Pool {
	t.Helper()
	peers := make([]Peer, f.total)
	for i := range peers {
		pe, err := f.spawn(i, f.total)
		if err != nil {
			t.Fatal(err)
		}
		peers[i] = pe
	}
	return NewSupervisedPool(f.in.Table.NumRows(), peers, f.spawn, opts)
}

func newFleet(t *testing.T, total int, mode func(index, spawn int) string) *fleet {
	return &fleet{t: t, in: patientsInput(t), total: total, spawns: map[int]int{}, mode: mode}
}

// assertScanMatchesLocal runs one supervised scan and pins the merged
// counts tuple-for-tuple against a local scan — the bit-identical
// guarantee must hold no matter how many respawns happened underneath.
func assertScanMatchesLocal(t *testing.T, p *Pool, in *core.Input) {
	t.Helper()
	dims, levels := []int{0, 1, 2}, []int{0, 0, 1}
	got, err := p.Scan(dims, levels, false)
	if err != nil {
		t.Fatalf("supervised scan: %v", err)
	}
	want := in.ScanFreq(dims, levels)
	if got.Total() != want.Total() || got.Len() != want.Len() {
		t.Fatalf("merged %d/%d tuples, want %d/%d", got.Total(), got.Len(), want.Total(), want.Len())
	}
	want.Each(func(codes []int32, count int64) {
		if got.Count(codes) != count {
			t.Errorf("count(%v) = %d, want %d", codes, got.Count(codes), count)
		}
	})
}

// TestSupervisedRespawnAfterCrash: a worker that dies before replying is
// respawned and the scan completes with counts bit-identical to a local
// scan; the supervision log carries the cause and the stderr tail.
func TestSupervisedRespawnAfterCrash(t *testing.T) {
	f := newFleet(t, 2, func(index, spawn int) string {
		if index == 0 && spawn == 1 {
			return "dead"
		}
		return "ok"
	})
	p := supervisedPool(t, f, Options{Retries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	sink := trace.New()
	p.SetTraceSink(sink)

	assertScanMatchesLocal(t, p, f.in)
	if got := p.Retries(); got != 1 {
		t.Fatalf("Retries() = %d, want 1", got)
	}
	attempts := p.Attempts()
	if len(attempts) != 1 || attempts[0].Worker != 0 {
		t.Fatalf("attempts = %+v", attempts)
	}
	if !strings.Contains(attempts[0].Stderr, "worker 0 spawn 1") {
		t.Fatalf("stderr tail not preserved: %q", attempts[0].Stderr)
	}
	if attempts[0].Backoff <= 0 {
		t.Fatalf("attempt recorded no backoff: %+v", attempts[0])
	}

	// A second scan works on the already-respawned fleet with no new
	// respawns, and Close grafts the supervision log into the trace.
	assertScanMatchesLocal(t, p, f.in)
	if got := p.Retries(); got != 1 {
		t.Fatalf("Retries() after second scan = %d, want 1", got)
	}
	if err := p.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	f.wg.Wait()
	doc := sink.Export()
	if n := len(doc.Find("worker_supervision")); n != 1 {
		t.Fatalf("worker_supervision spans = %d, want 1", n)
	}
	spans := doc.Find("worker_respawn")
	if len(spans) != 1 {
		t.Fatalf("worker_respawn spans = %d, want 1", len(spans))
	}
	if tail, _ := spans[0].Attrs["stderr_tail"].(string); !strings.Contains(tail, "simulated stderr") {
		t.Fatalf("respawn span lost the stderr tail: %v", spans[0].Attrs)
	}
}

// TestSupervisedStaleGenerationDiscarded: a reply carrying the wrong
// attempt-generation tag is discarded — never merged — and the respawned
// worker's partial enters exactly once, keeping counts bit-identical.
func TestSupervisedStaleGenerationDiscarded(t *testing.T) {
	f := newFleet(t, 2, func(index, spawn int) string {
		if index == 1 && spawn == 1 {
			return "stale"
		}
		return "ok"
	})
	p := supervisedPool(t, f, Options{Retries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	assertScanMatchesLocal(t, p, f.in)
	if got := p.Retries(); got != 1 {
		t.Fatalf("Retries() = %d, want 1", got)
	}
	attempts := p.Attempts()
	if len(attempts) != 1 || !strings.Contains(attempts[0].Cause, "generation") {
		t.Fatalf("attempts = %+v", attempts)
	}
	p.Close()
	f.wg.Wait()
}

// TestSupervisedTimeoutKillsWedgedWorker: a worker that accepts requests
// but never answers trips the reply deadline, is killed, and its
// replacement completes the scan.
func TestSupervisedTimeoutKillsWedgedWorker(t *testing.T) {
	f := newFleet(t, 2, func(index, spawn int) string {
		if index == 0 && spawn == 1 {
			return "wedge"
		}
		return "ok"
	})
	p := supervisedPool(t, f, Options{
		Retries: 2, Timeout: 50 * time.Millisecond,
		BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond,
	})
	assertScanMatchesLocal(t, p, f.in)
	attempts := p.Attempts()
	if len(attempts) != 1 || !strings.Contains(attempts[0].Cause, "wedged") {
		t.Fatalf("attempts = %+v", attempts)
	}
	f.mu.Lock()
	killed := f.killed
	f.mu.Unlock()
	if killed == 0 {
		t.Fatal("wedged worker was not killed")
	}
	p.Close()
	f.wg.Wait()
}

// TestSupervisedRetriesExhausted: when every respawn for a slot dies too,
// the retry budget runs out, the scan fails, and the pool is broken for
// good — later scans refuse to run.
func TestSupervisedRetriesExhausted(t *testing.T) {
	f := newFleet(t, 2, func(index, spawn int) string {
		if index == 0 {
			return "dead"
		}
		return "ok"
	})
	p := supervisedPool(t, f, Options{Retries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	if _, err := p.Scan([]int{0}, []int{0}, false); err == nil {
		t.Fatal("scan succeeded with a permanently dead worker")
	}
	if got := p.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2", got)
	}
	if _, err := p.Scan([]int{0}, []int{0}, false); err == nil ||
		!strings.Contains(err.Error(), "broken") {
		t.Fatalf("scan on exhausted pool: %v", err)
	}
	p.Close()
	f.wg.Wait()
}

// TestSupervisedWorkerErrorDoesNotRespawn: an in-band worker-reported
// error (malformed request) fails the scan but is not a process failure —
// no respawn, pool stays usable.
func TestSupervisedWorkerErrorDoesNotRespawn(t *testing.T) {
	f := newFleet(t, 2, func(index, spawn int) string { return "ok" })
	p := supervisedPool(t, f, Options{Retries: 2, BackoffBase: time.Millisecond})
	if _, err := p.Scan([]int{99}, []int{0}, false); err == nil {
		t.Fatal("out-of-range dim accepted")
	}
	if got := p.Retries(); got != 0 {
		t.Fatalf("worker-reported error triggered %d respawns", got)
	}
	assertScanMatchesLocal(t, p, f.in)
	p.Close()
	f.wg.Wait()
}

// TestBackoffCappedAndJittered: the schedule doubles from base, never
// exceeds max, and jitters within [d/2, d].
func TestBackoffCappedAndJittered(t *testing.T) {
	o := Options{BackoffBase: 10 * time.Millisecond, BackoffMax: 40 * time.Millisecond}
	for attempt, want := range map[int]time.Duration{
		1: 10 * time.Millisecond,
		2: 20 * time.Millisecond,
		3: 40 * time.Millisecond,
		9: 40 * time.Millisecond, // capped
	} {
		for i := 0; i < 20; i++ {
			d := o.backoff(attempt)
			if d < want/2 || d > want {
				t.Fatalf("backoff(%d) = %s, want within [%s, %s]", attempt, d, want/2, want)
			}
		}
	}
}
