//go:build faultinject

package partition

import (
	"strings"
	"testing"
	"time"

	"incognito/internal/faultinject"
)

// TestFaultMidFrameDeathRetriedBitIdentical is the acceptance pin for the
// exactly-once merge: a worker killed between writing a reply header and
// its payload (the worst possible moment — the coordinator has read a
// valid header and is blocked on the payload) is detected, respawned with
// backoff, and the merged counts stay bit-identical to a local scan.
func TestFaultMidFrameDeathRetriedBitIdentical(t *testing.T) {
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Arm("partition.worker_mid_frame", faultinject.KindPanic, 1)

	f := newFleet(t, 2, func(index, spawn int) string { return "ok" })
	p := supervisedPool(t, f, Options{Retries: 2, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	assertScanMatchesLocal(t, p, f.in)
	if got := p.Retries(); got != 1 {
		t.Fatalf("Retries() = %d, want 1", got)
	}
	attempts := p.Attempts()
	if len(attempts) != 1 {
		t.Fatalf("attempts = %+v", attempts)
	}
	// The fault disarmed after firing once: the next scan runs clean.
	assertScanMatchesLocal(t, p, f.in)
	if got := p.Retries(); got != 1 {
		t.Fatalf("Retries() after clean scan = %d, want 1", got)
	}
	p.Close()
	f.wg.Wait()
}

// TestFaultWorkerExecRetried: a respawn whose exec itself fails consumes
// the same retry budget and the next respawn attempt still rescues the
// scan.
func TestFaultWorkerExecRetried(t *testing.T) {
	f := newFleet(t, 2, func(index, spawn int) string {
		if index == 0 && spawn == 1 {
			return "dead"
		}
		return "ok"
	})
	p := supervisedPool(t, f, Options{Retries: 3, BackoffBase: time.Millisecond, BackoffMax: 2 * time.Millisecond})
	// Arm after the pool is seated so the initial spawns are unaffected:
	// the first respawn's exec fails, the second succeeds.
	faultinject.Reset()
	defer faultinject.Reset()
	faultinject.Arm("partition.worker_exec", faultinject.KindFail, 1)

	assertScanMatchesLocal(t, p, f.in)
	if got := p.Retries(); got != 2 {
		t.Fatalf("Retries() = %d, want 2 (dead worker + failed exec)", got)
	}
	attempts := p.Attempts()
	if len(attempts) != 2 || !strings.Contains(attempts[1].Cause, "exec") {
		t.Fatalf("attempts = %+v", attempts)
	}
	p.Close()
	f.wg.Wait()
}
