package partition

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"incognito/internal/trace"
)

// TestTelemetryFrameRoundTrip pins the trailing-frame encoding: what
// writeTelemetry puts on the wire, readTelemetry must recover intact.
func TestTelemetryFrameRoundTrip(t *testing.T) {
	tr := trace.New()
	root := tr.Start("partition_worker")
	root.Add("worker_scans", 3)
	root.End()
	in := WorkerReport{
		Index: 1, Workers: 4, RowLo: 25, RowHi: 50,
		Scans: 3, Errors: 1, BusyUS: 1234, PeakRSSBytes: 1 << 20,
		Trace: tr.Export(),
	}

	var buf bytes.Buffer
	bw := bufio.NewWriter(&buf)
	if err := writeTelemetry(bw, in); err != nil {
		t.Fatal(err)
	}
	out, ok := readTelemetry(bufio.NewReader(&buf))
	if !ok {
		t.Fatal("readTelemetry rejected its own frame")
	}
	if out.Index != 1 || out.Workers != 4 || out.RowLo != 25 || out.RowHi != 50 ||
		out.Scans != 3 || out.Errors != 1 || out.BusyUS != 1234 || out.PeakRSSBytes != 1<<20 {
		t.Fatalf("round trip lost fields: %+v", out)
	}
	if out.Trace == nil || out.Trace.SumCounter("worker_scans") != 3 {
		t.Fatalf("round trip lost the span tree: %+v", out.Trace)
	}
}

// TestReadTelemetryBestEffort: a worker that died before its frame, or an
// older binary that never sends one, must yield "no report", never an
// error that would fail the pool's shutdown.
func TestReadTelemetryBestEffort(t *testing.T) {
	cases := map[string]string{
		"eof before any frame":   "",
		"garbage header":         "not json\n",
		"non-telemetry header":   `{"len":4}` + "\nabcd",
		"error header":           `{"err":"boom","telemetry":true}` + "\n",
		"zero-length frame":      `{"len":0,"telemetry":true}` + "\n",
		"truncated payload":      `{"len":100,"telemetry":true}` + "\n{}",
		"payload is not a frame": `{"len":3,"telemetry":true}` + "\n[1]",
	}
	for name, wire := range cases {
		if _, ok := readTelemetry(bufio.NewReader(strings.NewReader(wire))); ok {
			t.Errorf("%s: readTelemetry accepted %q", name, wire)
		}
	}
}

func TestWorkerSkew(t *testing.T) {
	mk := func(busy ...int64) *Pool {
		p := &Pool{}
		for i, b := range busy {
			p.reports = append(p.reports, WorkerReport{Index: i, BusyUS: b})
		}
		return p
	}
	cases := []struct {
		name string
		pool *Pool
		want float64
	}{
		{"no reports", mk(), 0},
		{"all idle", mk(0, 0), 0},
		{"balanced", mk(100, 100), 1},
		{"one dominates", mk(300, 100), 1.5},
		{"single worker", mk(42), 1},
	}
	for _, tc := range cases {
		if got := tc.pool.WorkerSkew(); got != tc.want {
			t.Errorf("%s: skew = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestGraftReports: collected worker trees hang under one
// "partition_workers" span on the sink, and their counters join the
// coordinator trace's sums.
func TestGraftReports(t *testing.T) {
	worker := func(idx int) *trace.Document {
		wt := trace.New()
		root := wt.Start("partition_worker")
		root.SetAttr("worker", idx)
		root.Add("worker_scans", 2)
		root.End()
		return wt.Export()
	}
	sink := trace.New()
	p := &Pool{sink: sink, reports: []WorkerReport{
		{Index: 0, Trace: worker(0)},
		{Index: 1, Trace: nil}, // frame without a tree: skipped, not fatal
		{Index: 2, Trace: worker(2)},
	}}
	p.graftReports()

	doc := sink.Export()
	containers := doc.Find("partition_workers")
	if len(containers) != 1 {
		t.Fatalf("partition_workers spans = %d, want 1", len(containers))
	}
	if got := len(doc.Find("partition_worker")); got != 2 {
		t.Fatalf("grafted worker trees = %d, want 2", got)
	}
	if got := doc.SumCounter("worker_scans"); got != 4 {
		t.Fatalf("worker_scans sum = %d, want 4", got)
	}
}

// TestGraftReportsNilSinkAndNilTracer: no sink, and a typed-nil tracer in
// the sink interface, must both degrade to no-ops.
func TestGraftReportsNilSinkAndNilTracer(t *testing.T) {
	p := &Pool{reports: []WorkerReport{{Index: 0}}}
	p.graftReports() // no sink

	var nilTracer *trace.Tracer
	p.sink = nilTracer // non-nil interface, nil receiver: Start returns a nil span
	p.graftReports()
}

// TestCloseIdempotent: a second Close (the explicit-close-then-cleanup
// pattern) must not re-read streams or graft the reports twice.
func TestCloseIdempotent(t *testing.T) {
	sink := trace.New()
	p := NewPool(0, []Peer{})
	p.SetTraceSink(sink)
	p.reports = []WorkerReport{{Index: 0, Trace: func() *trace.Document {
		wt := trace.New()
		wt.Start("partition_worker").End()
		return wt.Export()
	}()}}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	if got := len(sink.Export().Find("partition_workers")); got != 1 {
		t.Fatalf("partition_workers spans after double Close = %d, want 1", got)
	}
	if len(p.Reports()) != 1 {
		t.Fatal("Reports lost after Close")
	}
}
