//go:build unix

package partition

import (
	"runtime"
	"syscall"
)

// peakRSS returns the process's peak resident set size in bytes via
// getrusage, or 0 when the syscall fails. ru_maxrss is reported in
// kilobytes on Linux and in bytes on macOS.
func peakRSS() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	rss := int64(ru.Maxrss)
	if runtime.GOOS != "darwin" {
		rss *= 1024
	}
	return rss
}
