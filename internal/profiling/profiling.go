// Package profiling wires the standard runtime/pprof profilers into the
// CLIs (-cpuprofile / -memprofile) with one call, so every command exposes
// the same observability knobs.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile at cpuPath and/or arranges a heap profile
// write to memPath; either path may be empty to skip that profiler. The
// returned stop function must be called exactly once on every exit path
// (including errors) — it stops the CPU profile and writes the heap
// profile. On error nothing is started and stop is a no-op.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return func() error { return nil }, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return func() error { return nil }, fmt.Errorf("start CPU profile: %w", err)
		}
	}
	stopped := false
	return func() error {
		if stopped {
			return nil
		}
		stopped = true
		var firstErr error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				firstErr = err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
			} else {
				runtime.GC() // materialize up-to-date heap statistics
				if err := pprof.WriteHeapProfile(f); err != nil && firstErr == nil {
					firstErr = err
				}
				if err := f.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
		}
		return firstErr
	}, nil
}
