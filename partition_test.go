package incognito_test

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"sync"
	"testing"

	incognito "incognito"
	"incognito/internal/partition"
)

// partitionTable builds a deterministic synthetic table big enough that
// every worker of a small pool gets a non-trivial row range, with a QI
// whose lattice has multiple families.
func partitionTable(tb testing.TB, rows int) (*incognito.Table, []incognito.QI) {
	tb.Helper()
	rng := rand.New(rand.NewSource(17))
	data := make([][]string, rows)
	for i := range data {
		data[i] = []string{
			fmt.Sprintf("%05d", 53000+rng.Intn(40)),
			[]string{"Male", "Female"}[rng.Intn(2)],
			fmt.Sprintf("%d", 1950+rng.Intn(30)),
		}
	}
	tab, err := incognito.NewTable([]string{"Zipcode", "Sex", "Year"}, data)
	if err != nil {
		tb.Fatal(err)
	}
	qi := []incognito.QI{
		{Column: "Zipcode", Hierarchy: incognito.RoundDigits(3)},
		{Column: "Sex", Hierarchy: incognito.Suppression()},
		{Column: "Year", Hierarchy: incognito.RoundDigits(2)},
	}
	return tab, qi
}

// inProcessPool wires a partition pool whose workers are goroutines
// serving over in-process pipes instead of child processes — the same
// code path as spawned workers (ServePartitionWorker end to end, wire
// codec included) minus the exec, so tests stay hermetic and fast.
func inProcessPool(t *testing.T, tab *incognito.Table, qi []incognito.QI, n int) *incognito.PartitionPool {
	t.Helper()
	peers := make([]partition.Peer, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		reqR, reqW := io.Pipe()
		respR, respW := io.Pipe()
		wg.Add(1)
		go func(i int, r *io.PipeReader, w *io.PipeWriter) {
			defer wg.Done()
			err := incognito.ServePartitionWorker(tab, qi, i, n, r, w)
			w.CloseWithError(err)
		}(i, reqR, respW)
		peers[i] = partition.Peer{R: respR, W: reqW}
	}
	pool := partition.NewPool(tab.NumRows(), peers)
	t.Cleanup(func() {
		pool.Close()
		wg.Wait()
	})
	return pool
}

// runLevels flattens a result to its solution level vectors for
// comparison.
func runLevels(res *incognito.Result) [][]int {
	out := make([][]int, 0, res.Len())
	for _, s := range res.Solutions() {
		out = append(out, s.Levels())
	}
	return out
}

// TestPartitionedRunBitIdentical is the acceptance contract of the
// partition mode: for every Incognito variant and both kernels, a run
// whose scans are distributed across 1, 2, or 3 worker processes must
// produce exactly the Solutions and Stats of the single-process run —
// and so must the per-solution metrics that re-scan through the pool.
func TestPartitionedRunBitIdentical(t *testing.T) {
	tab, qi := partitionTable(t, 600)
	for _, algo := range []incognito.Algorithm{
		incognito.BasicIncognito, incognito.SuperRootsIncognito, incognito.CubeIncognito,
	} {
		for _, sparse := range []bool{false, true} {
			base := incognito.Config{K: 4, Algorithm: algo, SparseKernel: sparse}
			want, err := incognito.Anonymize(tab, qi, base)
			if err != nil {
				t.Fatal(err)
			}
			wantBest, _ := want.Best(incognito.MinDiscernibility())
			for _, parts := range []int{1, 2, 3} {
				t.Run(fmt.Sprintf("%v/sparse=%v/partitions=%d", algo, sparse, parts), func(t *testing.T) {
					cfg := base
					cfg.Partition = inProcessPool(t, tab, qi, parts)
					got, err := incognito.Anonymize(tab, qi, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if lv, wv := runLevels(got), runLevels(want); !equalLevels(lv, wv) {
						t.Fatalf("partitioned solutions differ:\ngot  %v\nwant %v", lv, wv)
					}
					if got.Stats() != want.Stats() {
						t.Fatalf("partitioned stats differ:\ngot  %+v\nwant %+v", got.Stats(), want.Stats())
					}
					best, ok := got.Best(incognito.MinDiscernibility())
					if !ok {
						t.Fatal("partitioned run lost its solutions")
					}
					if best.Discernibility() != wantBest.Discernibility() ||
						best.Suppressed() != wantBest.Suppressed() {
						t.Fatal("solution metrics diverged under partitioned scanning")
					}
				})
			}
		}
	}
}

func equalLevels(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestPartitionPoolValidation pins the guard rails: a pool built for a
// different table is rejected up front, and a worker bound to a different
// QI (shorter hierarchies than the coordinator requests) surfaces as a
// scan error, not silent corruption.
func TestPartitionPoolValidation(t *testing.T) {
	tab, qi := partitionTable(t, 200)
	other, _ := partitionTable(t, 120)
	pool := inProcessPool(t, other, qi, 2)
	if _, err := incognito.Anonymize(tab, qi, incognito.Config{K: 2, Partition: pool}); err == nil ||
		!strings.Contains(err.Error(), "partition pool") {
		t.Fatalf("pool/table row mismatch not rejected: %v", err)
	}

	// A worker bound to shorter hierarchies serves the search itself
	// correctly (Incognito scans at level zero and rolls up locally), but
	// the first scan at a generalized level — a solution metric's re-scan —
	// must fail loudly on the worker's request validation.
	shortQI := []incognito.QI{
		{Column: "Zipcode", Hierarchy: incognito.RoundDigits(1)},
		{Column: "Sex", Hierarchy: incognito.Suppression()},
		{Column: "Year", Hierarchy: incognito.RoundDigits(1)},
	}
	mismatched := inProcessPool(t, tab, shortQI, 2)
	res, err := incognito.Anonymize(tab, qi, incognito.Config{K: 2, Partition: mismatched})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("expected solutions")
	}
	// The last solution in height order is the lattice top — its levels
	// exceed the short worker hierarchies, so its re-scan must be refused.
	top := res.Solutions()[res.Len()-1]
	func() {
		defer func() {
			if r := recover(); r == nil || !strings.Contains(fmt.Sprint(r), "partition") {
				t.Fatalf("QI-mismatched worker scan did not surface a partition error: %v", r)
			}
		}()
		top.Discernibility()
	}()

	if err := incognito.ServePartitionWorker(tab, qi, 3, 2, strings.NewReader(""), io.Discard); err == nil {
		t.Fatal("out-of-range worker index accepted")
	}
	if err := incognito.ServePartitionWorker(nil, qi, 0, 2, strings.NewReader(""), io.Discard); err == nil {
		t.Fatal("nil table accepted")
	}
	if err := incognito.ServePartitionWorker(tab, nil, 0, 2, strings.NewReader(""), io.Discard); err == nil {
		t.Fatal("empty quasi-identifier accepted")
	}
	badQI := []incognito.QI{{Column: "NoSuchColumn", Hierarchy: incognito.Suppression()}}
	if err := incognito.ServePartitionWorker(tab, badQI, 0, 2, strings.NewReader(""), io.Discard); err == nil {
		t.Fatal("unknown QI column accepted")
	}

	if _, err := incognito.SpawnPartitionWorkers(nil, 2, nil); err == nil {
		t.Fatal("SpawnPartitionWorkers accepted a nil table")
	}
	if _, err := incognito.SpawnPartitionWorkers(tab, 0, nil); err == nil {
		t.Fatal("SpawnPartitionWorkers accepted a zero worker count")
	}
}

// TestPartitionWithIntraRunParallelism layers the two axes: partitioned
// scans under a coordinator that also runs its family searches on the
// work-stealing scheduler. Results must still match the sequential
// single-process reference bit for bit.
func TestPartitionWithIntraRunParallelism(t *testing.T) {
	tab, qi := partitionTable(t, 600)
	want, err := incognito.Anonymize(tab, qi, incognito.Config{K: 3, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg := incognito.Config{K: 3, Parallelism: 4, Partition: inProcessPool(t, tab, qi, 2)}
	got, err := incognito.Anonymize(tab, qi, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !equalLevels(runLevels(got), runLevels(want)) || got.Stats() != want.Stats() {
		t.Fatal("partitioned + parallel run diverged from the sequential reference")
	}
}
