package incognito_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	incognito "incognito"
)

func TestDimensionRowsHierarchy(t *testing.T) {
	tab, err := incognito.NewTable(
		[]string{"Zip"},
		[][]string{{"53715"}, {"53710"}, {"53706"}, {"53703"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rows := [][]string{
		{"53715", "5371*", "537**"},
		{"53710", "5371*", "537**"},
		{"53706", "5370*", "537**"},
		{"53703", "5370*", "537**"},
	}
	res, err := incognito.Anonymize(tab, []incognito.QI{
		{Column: "Zip", Hierarchy: incognito.DimensionRows(rows, []string{"Zip4", "Zip3"})},
	}, incognito.Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Each base zip is unique, level 1 groups pairs: levels 1 and 2 qualify.
	want := [][]int{{1}, {2}}
	var got [][]int
	for _, s := range res.Solutions() {
		got = append(got, s.Levels())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("solutions = %v, want %v", got, want)
	}
	if name := res.Solutions()[0].LevelNames()[0]; name != "Zip4" {
		t.Fatalf("custom level name = %q, want Zip4", name)
	}
}

func TestDimensionRowsErrorsSurfaceFromAnonymize(t *testing.T) {
	tab, err := incognito.NewTable([]string{"Zip"}, [][]string{{"53715"}})
	if err != nil {
		t.Fatal(err)
	}
	bad := incognito.DimensionRows([][]string{{"only-base"}}, nil)
	if _, err := incognito.Anonymize(tab, []incognito.QI{{Column: "Zip", Hierarchy: bad}}, incognito.Config{K: 1}); err == nil {
		t.Fatal("invalid dimension rows accepted")
	}
	// A table value missing from the rows fails at bind time.
	partial := incognito.DimensionRows([][]string{{"99999", "*"}}, nil)
	if _, err := incognito.Anonymize(tab, []incognito.QI{{Column: "Zip", Hierarchy: partial}}, incognito.Config{K: 1}); err == nil {
		t.Fatal("non-covering dimension rows accepted")
	}
}

func TestDimensionCSVHierarchy(t *testing.T) {
	path := filepath.Join(t.TempDir(), "zip.csv")
	csv := "zip,zip4,zip3\n53715,5371*,537**\n53710,5371*,537**\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	tab, err := incognito.NewTable([]string{"Zip"}, [][]string{{"53715"}, {"53710"}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := incognito.Anonymize(tab, []incognito.QI{
		{Column: "Zip", Hierarchy: incognito.DimensionCSV(path)},
	}, incognito.Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("solutions = %d, want 2", res.Len())
	}
	missing := incognito.DimensionCSV(filepath.Join(t.TempDir(), "nope.csv"))
	if _, err := incognito.Anonymize(tab, []incognito.QI{{Column: "Zip", Hierarchy: missing}}, incognito.Config{K: 2}); err == nil {
		t.Fatal("missing CSV accepted")
	}
}

func TestMaterializedIncognitoPublicAPI(t *testing.T) {
	tab := patientsTable(t)
	for _, budget := range []int{0, 100, 1 << 20} {
		res, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{
			K: 2, Algorithm: incognito.MaterializedIncognito, MaterializeBudget: budget,
		})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if res.Len() != 5 {
			t.Fatalf("budget %d: %d solutions, want 5", budget, res.Len())
		}
		if !res.Complete() {
			t.Fatal("materialized variant must be complete")
		}
	}
}
