package incognito_test

import (
	"reflect"
	"strings"
	"testing"

	incognito "incognito"
)

// patientsTable builds the paper's running example through the public API.
func patientsTable(t *testing.T) *incognito.Table {
	t.Helper()
	tab, err := incognito.NewTable(
		[]string{"Birthdate", "Sex", "Zipcode", "Disease"},
		[][]string{
			{"1/21/76", "Male", "53715", "Flu"},
			{"4/13/86", "Female", "53715", "Hepatitis"},
			{"2/28/76", "Male", "53703", "Brochitis"},
			{"1/21/76", "Male", "53703", "Broken Arm"},
			{"4/13/86", "Female", "53706", "Sprained Ankle"},
			{"2/28/76", "Female", "53706", "Hang Nail"},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func patientsQI() []incognito.QI {
	return []incognito.QI{
		{Column: "Birthdate", Hierarchy: incognito.Suppression()},
		{Column: "Sex", Hierarchy: incognito.Taxonomy(map[string]string{"Male": "Person", "Female": "Person"})},
		{Column: "Zipcode", Hierarchy: incognito.RoundDigits(2)},
	}
}

func TestAnonymizePatientsAllAlgorithms(t *testing.T) {
	tab := patientsTable(t)
	complete := []incognito.Algorithm{
		incognito.BasicIncognito,
		incognito.SuperRootsIncognito,
		incognito.CubeIncognito,
		incognito.BottomUp,
		incognito.BottomUpRollup,
		incognito.MaterializedIncognito,
	}
	wantLevels := [][]int{
		{1, 1, 0}, {0, 1, 2}, {1, 0, 2}, {1, 1, 1}, {1, 1, 2},
	}
	for _, algo := range complete {
		res, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{K: 2, Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if !res.Complete() {
			t.Fatalf("%v should report a complete result", algo)
		}
		if res.Len() != len(wantLevels) {
			t.Fatalf("%v found %d solutions, want %d", algo, res.Len(), len(wantLevels))
		}
		for i, s := range res.Solutions() {
			if !reflect.DeepEqual(s.Levels(), wantLevels[i]) {
				t.Fatalf("%v: solution %d = %v, want %v", algo, i, s.Levels(), wantLevels[i])
			}
		}
	}
}

func TestAnonymizeBinarySearch(t *testing.T) {
	tab := patientsTable(t)
	res, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{K: 2, Algorithm: incognito.BinarySearch})
	if err != nil {
		t.Fatal(err)
	}
	if res.Complete() {
		t.Fatal("binary search must not claim completeness")
	}
	if res.Len() != 1 {
		t.Fatalf("binary search returned %d solutions, want 1", res.Len())
	}
	s := res.Solutions()[0]
	if s.Height() != 2 {
		t.Fatalf("binary search solution height = %d, want 2", s.Height())
	}
}

func TestBestUnderCriteria(t *testing.T) {
	tab := patientsTable(t)
	res, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Height-minimal: <B1, S1, Z0> at height 2.
	best, ok := res.Best(incognito.MinHeight())
	if !ok || !reflect.DeepEqual(best.Levels(), []int{1, 1, 0}) {
		t.Fatalf("MinHeight best = %v", best.Levels())
	}
	// Nil criterion defaults to MinHeight.
	d, _ := res.Best(nil)
	if !reflect.DeepEqual(d.Levels(), best.Levels()) {
		t.Fatal("nil criterion should default to MinHeight")
	}
	// §2.1's flexibility example: insist Sex stays intact. The only
	// solution with Sex at level 0 is <B1, S0, Z2>.
	sexIntact, ok := res.Best(incognito.PreserveColumns("Sex"))
	if !ok || !reflect.DeepEqual(sexIntact.Levels(), []int{1, 0, 2}) {
		t.Fatalf("PreserveColumns(Sex) best = %v, want [1 0 2]", sexIntact.Levels())
	}
	// Same preference expressed as weights.
	weighted, _ := res.Best(incognito.WeightedHeight(map[string]float64{"Sex": 100}))
	if !reflect.DeepEqual(weighted.Levels(), []int{1, 0, 2}) {
		t.Fatalf("WeightedHeight best = %v, want [1 0 2]", weighted.Levels())
	}
	// Discernibility prefers the finest partition.
	dm, _ := res.Best(incognito.MinDiscernibility())
	for _, s := range res.Solutions() {
		if s.Discernibility() < dm.Discernibility() {
			t.Fatalf("MinDiscernibility missed a better solution: %v", s.Levels())
		}
	}
	// Precision: base levels score higher.
	prec, _ := res.Best(incognito.MaxPrecision())
	for _, s := range res.Solutions() {
		if s.Precision() > prec.Precision() {
			t.Fatalf("MaxPrecision missed a better solution: %v", s.Levels())
		}
	}
	if mac, ok := res.Best(incognito.MinAvgClassSize()); ok {
		for _, s := range res.Solutions() {
			if s.AvgClassSize() < mac.AvgClassSize() {
				t.Fatalf("MinAvgClassSize missed a better solution: %v", s.Levels())
			}
		}
	}
}

func TestSolutionRendering(t *testing.T) {
	tab := patientsTable(t)
	res, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best(incognito.MinHeight())
	if got := best.String(); got != "<Birthdate1, Sex1, Zipcode0>" {
		t.Fatalf("String() = %q", got)
	}
	if !reflect.DeepEqual(best.Columns(), []string{"Birthdate", "Sex", "Zipcode"}) {
		t.Fatalf("Columns() = %v", best.Columns())
	}
	names := best.LevelNames()
	if names[1] != "Sex1" {
		t.Fatalf("LevelNames() = %v", names)
	}
}

func TestApplyThroughPublicAPI(t *testing.T) {
	tab := patientsTable(t)
	res, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	best, _ := res.Best(incognito.MinHeight()) // <B1, S1, Z0>
	view, err := best.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if view.NumRows() != 6 {
		t.Fatalf("view has %d rows, want 6", view.NumRows())
	}
	for r := 0; r < view.NumRows(); r++ {
		if view.Value(r, 0) != "*" || view.Value(r, 1) != "Person" {
			t.Fatalf("row %d not generalized: %v", r, view.Row(r))
		}
		if strings.Contains(view.Value(r, 2), "*") {
			t.Fatalf("Zipcode should be released intact at level 0, got %q", view.Value(r, 2))
		}
	}
	if best.Suppressed() != 0 {
		t.Fatalf("Suppressed = %d, want 0", best.Suppressed())
	}
}

func TestAnonymizeValidation(t *testing.T) {
	tab := patientsTable(t)
	if _, err := incognito.Anonymize(nil, patientsQI(), incognito.Config{K: 2}); err == nil {
		t.Fatal("nil table accepted")
	}
	if _, err := incognito.Anonymize(tab, nil, incognito.Config{K: 2}); err == nil {
		t.Fatal("empty QI accepted")
	}
	if _, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
	if _, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{K: 2, MaxSuppressed: -1}); err == nil {
		t.Fatal("negative MaxSuppressed accepted")
	}
	qi := patientsQI()
	qi[0].Column = "Nope"
	if _, err := incognito.Anonymize(tab, qi, incognito.Config{K: 2}); err == nil {
		t.Fatal("missing column accepted")
	}
	qi = patientsQI()
	qi[0].Hierarchy = nil
	if _, err := incognito.Anonymize(tab, qi, incognito.Config{K: 2}); err == nil {
		t.Fatal("nil hierarchy accepted")
	}
	// A taxonomy that does not cover the data must surface the Bind error.
	qi = patientsQI()
	qi[1].Hierarchy = incognito.Taxonomy(map[string]string{"Male": "Person"})
	if _, err := incognito.Anonymize(tab, qi, incognito.Config{K: 2}); err == nil {
		t.Fatal("non-total taxonomy accepted")
	}
	// Deferred constructor errors surface too.
	qi = patientsQI()
	qi[2].Hierarchy = incognito.RoundDigits(0)
	if _, err := incognito.Anonymize(tab, qi, incognito.Config{K: 2}); err == nil {
		t.Fatal("invalid RoundDigits accepted")
	}
	if _, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{K: 2, Algorithm: incognito.Algorithm(99)}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestHierarchyConstructorErrors(t *testing.T) {
	tab := patientsTable(t)
	cases := []incognito.QI{
		{Column: "Zipcode", Hierarchy: incognito.Taxonomy()},
		{Column: "Zipcode", Hierarchy: incognito.Intervals(0)},
		{Column: "Zipcode", Hierarchy: incognito.Intervals(0, -5)},
		{Column: "Zipcode", Hierarchy: incognito.Intervals(0, 5, 12)},
		{Column: "Zipcode", Hierarchy: incognito.Custom()},
	}
	for i, q := range cases {
		if _, err := incognito.Anonymize(tab, []incognito.QI{q}, incognito.Config{K: 2}); err == nil {
			t.Fatalf("case %d: invalid hierarchy accepted", i)
		}
	}
}

func TestCustomHierarchy(t *testing.T) {
	tab := patientsTable(t)
	firstDigit := incognito.Custom(incognito.Level{
		Name: "ZipRegion",
		Map:  func(v string) (string, error) { return v[:1] + "****", nil },
	})
	res, err := incognito.Anonymize(tab, []incognito.QI{
		{Column: "Zipcode", Hierarchy: firstDigit},
	}, incognito.Config{K: 6})
	if err != nil {
		t.Fatal(err)
	}
	// All six rows share 5****, so level 1 is 6-anonymous; level 0 is not.
	want := [][]int{{1}}
	var got [][]int
	for _, s := range res.Solutions() {
		got = append(got, s.Levels())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("solutions = %v, want %v", got, want)
	}
}

func TestSuppressionThresholdPublicAPI(t *testing.T) {
	tab, err := incognito.NewTable(
		[]string{"Zip"},
		[][]string{{"11111"}, {"11111"}, {"11111"}, {"11112"}},
	)
	if err != nil {
		t.Fatal(err)
	}
	qi := []incognito.QI{{Column: "Zip", Hierarchy: incognito.RoundDigits(1)}}
	// Without suppression, level 0 fails (the 22222 singleton).
	res, err := incognito.Anonymize(tab, qi, incognito.Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Fatalf("solutions = %d, want only the generalized level", res.Len())
	}
	// Allowing one suppressed tuple admits level 0.
	res, err = incognito.Anonymize(tab, qi, incognito.Config{K: 2, MaxSuppressed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("solutions = %d, want 2", res.Len())
	}
	base, _ := res.Best(incognito.MinHeight())
	view, err := base.Apply()
	if err != nil {
		t.Fatal(err)
	}
	if view.NumRows() != 3 {
		t.Fatalf("suppressed view has %d rows, want 3", view.NumRows())
	}
	if base.Suppressed() != 1 {
		t.Fatalf("Suppressed = %d, want 1", base.Suppressed())
	}
}

func TestResultStatsExposed(t *testing.T) {
	tab := patientsTable(t)
	res, err := incognito.Anonymize(tab, patientsQI(), incognito.Config{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats()
	if st.NodesChecked == 0 || st.Candidates == 0 || st.TableScans == 0 {
		t.Fatalf("stats look empty: %+v", st)
	}
}

func TestTableCSVRoundTripPublicAPI(t *testing.T) {
	tab := patientsTable(t)
	var sb strings.Builder
	if err := tab.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := incognito.ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tab.Rows(), back.Rows()) {
		t.Fatal("CSV round trip changed data")
	}
	if back.ColumnIndex("Sex") != 1 || back.ColumnIndex("none") != -1 {
		t.Fatal("ColumnIndex wrong after round trip")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	names := map[incognito.Algorithm]string{
		incognito.BasicIncognito:        "Basic Incognito",
		incognito.SuperRootsIncognito:   "Super-roots Incognito",
		incognito.CubeIncognito:         "Cube Incognito",
		incognito.BottomUp:              "Bottom-Up (w/o rollup)",
		incognito.BottomUpRollup:        "Bottom-Up (w/ rollup)",
		incognito.BinarySearch:          "Binary Search",
		incognito.MaterializedIncognito: "Materialized Incognito",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}
