package incognito_test

import (
	"io"
	"testing"

	incognito "incognito"
	"incognito/internal/partition"
	"incognito/internal/trace"
)

// TestPartitionWorkerReports: after a graceful Close, the pool holds one
// telemetry frame per worker, with counters consistent across the pool —
// every worker serves every coordinator scan, so the per-worker scan
// counts are identical and at least the search's TableScans (solution
// metrics re-scan through the pool on top of the search's scans).
func TestPartitionWorkerReports(t *testing.T) {
	tab, qi := partitionTable(t, 300)
	pool := inProcessPool(t, tab, qi, 3)
	res, err := incognito.Anonymize(tab, qi, incognito.Config{K: 4, Partition: pool})
	if err != nil {
		t.Fatal(err)
	}
	stats := res.Stats()
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	reports := pool.Reports()
	if len(reports) != 3 {
		t.Fatalf("reports = %d, want 3", len(reports))
	}
	var prevHi int
	for i, rep := range reports {
		if rep.Index != i || rep.Workers != 3 {
			t.Errorf("report %d identifies as %d/%d", i, rep.Index, rep.Workers)
		}
		if rep.RowLo != prevHi || rep.RowHi <= rep.RowLo {
			t.Errorf("report %d covers [%d,%d), want contiguous from %d", i, rep.RowLo, rep.RowHi, prevHi)
		}
		prevHi = rep.RowHi
		if rep.Errors != 0 {
			t.Errorf("report %d: %d worker errors", i, rep.Errors)
		}
		if rep.Scans != reports[0].Scans {
			t.Errorf("report %d served %d scans, worker 0 served %d — a scan missed a worker",
				i, rep.Scans, reports[0].Scans)
		}
		if rep.Trace == nil {
			t.Fatalf("report %d has no span tree", i)
		}
		roots := rep.Trace.Find("partition_worker")
		if len(roots) != 1 {
			t.Fatalf("report %d trace roots = %d, want 1", i, len(roots))
		}
		// The span-tree counters must agree with the frame's own counters.
		if got := rep.Trace.SumCounter("worker_scans"); got != rep.Scans {
			t.Errorf("report %d: trace counts %d scans, frame says %d", i, got, rep.Scans)
		}
		if got := rep.Trace.SumCounter("worker_rows"); got != rep.Scans*int64(rep.RowHi-rep.RowLo) {
			t.Errorf("report %d: worker_rows = %d, want scans×range = %d",
				i, got, rep.Scans*int64(rep.RowHi-rep.RowLo))
		}
	}
	if prevHi != tab.NumRows() {
		t.Errorf("worker ranges end at %d, want %d", prevHi, tab.NumRows())
	}
	if reports[0].Scans < int64(stats.TableScans) {
		t.Errorf("workers served %d scans, search alone made %d", reports[0].Scans, stats.TableScans)
	}
	// Busy-time skew is 0 (sub-microsecond scans) or >= 1 by construction.
	if skew := pool.WorkerSkew(); skew != 0 && skew < 1 {
		t.Errorf("WorkerSkew = %v, want 0 or >= 1", skew)
	}
}

// TestPartitionTraceSinkGraft: with a sink installed, Close hangs the
// worker span trees under one partition_workers span, and the
// coordinator's partition_scan spans agree with the adopted worker view
// of the same scans.
func TestPartitionTraceSinkGraft(t *testing.T) {
	tab, qi := partitionTable(t, 200)
	pool := inProcessPool(t, tab, qi, 2)
	tr := trace.New()
	pool.SetTraceSink(tr)
	if _, err := incognito.Anonymize(tab, qi, incognito.Config{K: 3, Partition: pool}); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}

	doc := tr.Export()
	containers := doc.Find("partition_workers")
	if len(containers) != 1 {
		t.Fatalf("partition_workers spans = %d, want 1", len(containers))
	}
	workers := doc.Find("partition_worker")
	if len(workers) != 2 {
		t.Fatalf("grafted worker trees = %d, want 2", len(workers))
	}
	perWorker := workers[0].Counters["worker_scans"] + sumChildren(workers[0], "worker_scans")
	if perWorker == 0 {
		t.Fatal("worker 0's grafted tree carries no worker_scans")
	}
	if got := doc.SumCounter("worker_scans"); got != 2*perWorker {
		t.Errorf("worker_scans sum = %d, want both workers' %d", got, 2*perWorker)
	}
}

func sumChildren(s *trace.SpanDoc, counter string) int64 {
	var n int64
	for _, c := range s.Children {
		n += c.Counters[counter] + sumChildren(c, counter)
	}
	return n
}

// TestPartitionCloseWithoutFrameTolerated: a peer that exits on EOF
// without sending a telemetry frame (an older worker binary, or one that
// died) must not fail Close — the other workers' reports still arrive.
func TestPartitionCloseWithoutFrameTolerated(t *testing.T) {
	tab, qi := partitionTable(t, 100)

	// Peer 0 speaks the full protocol; peer 1 just drains its stdin and
	// closes its reply stream without the trailing frame.
	reqR0, reqW0 := io.Pipe()
	respR0, respW0 := io.Pipe()
	served := make(chan error, 1)
	go func() {
		err := incognito.ServePartitionWorker(tab, qi, 0, 2, reqR0, respW0)
		respW0.CloseWithError(err)
		served <- err
	}()
	reqR1, reqW1 := io.Pipe()
	respR1, respW1 := io.Pipe()
	silent := make(chan struct{})
	go func() {
		defer close(silent)
		_, _ = io.Copy(io.Discard, reqR1)
		respW1.Close()
	}()

	pool := partition.NewPool(tab.NumRows(), []partition.Peer{
		{R: respR0, W: reqW0},
		{R: respR1, W: reqW1},
	})
	if err := pool.Close(); err != nil {
		t.Fatalf("Close with a frameless peer: %v", err)
	}
	if err := <-served; err != nil {
		t.Fatalf("worker 0: %v", err)
	}
	<-silent

	reports := pool.Reports()
	if len(reports) != 1 || reports[0].Index != 0 {
		t.Fatalf("reports = %+v, want worker 0's frame only", reports)
	}
	if reports[0].Scans != 0 {
		t.Errorf("idle worker reports %d scans", reports[0].Scans)
	}
}
