#!/usr/bin/env sh
# check_coverage.sh COVERPROFILE
#
# CI coverage gate: fails when total statement coverage drops below the
# checked-in baseline (scripts/coverage_baseline.txt, a bare percentage).
# The baseline is a floor, not a target — raise it when coverage improves,
# never lower it to make a red build green.
#
# Portability: plain POSIX sh, and deliberately no mktemp or grep — both
# differ between GNU and BSD/macOS (mktemp template handling, grep -P).
# Number parsing is pinned to the C locale so awk's float comparison does
# not depend on the host's decimal separator.
#
# Regenerate the number behind the baseline with:
#   go test -coverprofile=coverage.out ./...
#   go tool cover -func=coverage.out | tail -1
set -eu
LC_ALL=C
export LC_ALL

profile=${1:?usage: check_coverage.sh coverage.out}
baseline_file=$(dirname "$0")/coverage_baseline.txt
# tr strips whitespace and CR so a CRLF checkout cannot corrupt the number.
baseline=$(tr -d ' \t\r\n' < "$baseline_file")
case $baseline in
    ''|*[!0-9.]*)
        echo "check_coverage: baseline '$baseline' in $baseline_file is not a number" >&2
        exit 1
        ;;
esac

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
if [ -z "$total" ]; then
    echo "check_coverage: no total line in $profile" >&2
    exit 1
fi

echo "total statement coverage: ${total}% (baseline: ${baseline}%)"
if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t+0 < b+0) }'; then
    echo "check_coverage: coverage ${total}% fell below the ${baseline}% baseline" >&2
    exit 1
fi
