#!/usr/bin/env sh
# check_coverage.sh COVERPROFILE
#
# CI coverage gate: fails when total statement coverage drops below the
# checked-in baseline (scripts/coverage_baseline.txt, a bare percentage).
# The baseline is a floor, not a target — raise it when coverage improves,
# never lower it to make a red build green.
#
# Regenerate the number behind the baseline with:
#   go test -coverprofile=coverage.out ./...
#   go tool cover -func=coverage.out | tail -1
set -eu

profile=${1:?usage: check_coverage.sh coverage.out}
baseline_file=$(dirname "$0")/coverage_baseline.txt
baseline=$(cat "$baseline_file")

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
if [ -z "$total" ]; then
    echo "check_coverage: no total line in $profile" >&2
    exit 1
fi

echo "total statement coverage: ${total}% (baseline: ${baseline}%)"
if awk -v t="$total" -v b="$baseline" 'BEGIN { exit !(t+0 < b+0) }'; then
    echo "check_coverage: coverage ${total}% fell below the ${baseline}% baseline" >&2
    exit 1
fi
